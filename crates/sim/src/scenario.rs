//! Declarative experiment descriptions.

use crate::faults::{FaultPlan, ShardFaultPlan};
use crate::hostile::HostilePlan;
use edgealloc::algorithms::{
    OnlineAlgorithm, OnlineGreedy, OnlineRegularized, OperOpt, PerfOpt, StatOpt, StaticPolicy,
    StaticVariant,
};
use edgealloc::cost::CostWeights;
use mobility::prices::PriceConfig;
use mobility::taxi::TaxiConfig;
use mobility::workload::WorkloadDist;
use serde::{Deserialize, Serialize};
use shard::OnlineSharded;

/// Which mobility substrate drives the users.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum MobilityKind {
    /// Synthetic taxi trips around the metro stations (the Roma-taxi
    /// substitution; §V-A/B of the paper).
    Taxi {
        /// Number of taxis/users.
        num_users: usize,
    },
    /// Uniform random walk on the metro graph (§V-D).
    RandomWalk {
        /// Number of walkers/users.
        num_users: usize,
    },
    /// Diurnal commute waves between home stations and a few work hubs —
    /// the hostile mobility shape (see [`mobility::hostile`]). The wave
    /// slots are derived from the scenario horizon (morning at ¼, evening
    /// at ¾).
    Commute {
        /// Number of commuters/users.
        num_users: usize,
    },
}

impl MobilityKind {
    /// The number of users the scenario simulates.
    pub fn num_users(&self) -> usize {
        match *self {
            MobilityKind::Taxi { num_users }
            | MobilityKind::RandomWalk { num_users }
            | MobilityKind::Commute { num_users } => num_users,
        }
    }
}

/// Which algorithm to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AlgorithmKind {
    /// The paper's regularized online algorithm with `ε₁ = ε₂ = eps`.
    Approx {
        /// Regularization parameter.
        eps: f64,
    },
    /// The regularized algorithm with explicit capacity rows instead of
    /// constraint (10b) — the deployment-grade variant (ablation).
    ApproxExplicit {
        /// Regularization parameter.
        eps: f64,
    },
    /// Per-slot full-ℙ₀ greedy.
    Greedy,
    /// Quality-only atomistic baseline.
    PerfOpt,
    /// Operation-only atomistic baseline.
    OperOpt,
    /// Static-cost atomistic baseline.
    StatOpt,
    /// Frozen capacity-proportional allocation.
    StaticProportional,
    /// Frozen first-slot static optimum.
    StaticFirstSlot,
    /// Frozen first-slot locality-first allocation.
    StaticLocal,
    /// The sharded regularized algorithm: each slot decomposed across
    /// `shards` user shards coordinated by capacity prices (explicit
    /// capacity rows, like [`AlgorithmKind::ApproxExplicit`]).
    Sharded {
        /// Regularization parameter.
        eps: f64,
        /// Target user-shard count.
        shards: usize,
    },
}

impl AlgorithmKind {
    /// Instantiates the algorithm.
    pub fn build(&self) -> Box<dyn OnlineAlgorithm + Send> {
        self.build_with_deadline(None)
    }

    /// Instantiates the algorithm with a per-slot wall-clock budget in
    /// milliseconds. Only the regularized variants solve anything that can
    /// run long, so only they honor the deadline; the atomistic and static
    /// baselines are O(users·clouds) per slot and ignore it.
    pub fn build_with_deadline(
        &self,
        slot_deadline_ms: Option<f64>,
    ) -> Box<dyn OnlineAlgorithm + Send> {
        self.build_full(slot_deadline_ms, &ShardFaultPlan::none())
    }

    /// Instantiates the algorithm with a per-slot deadline *and* the
    /// scenario's shard-worker fault plan. Only [`AlgorithmKind::Sharded`]
    /// has shard workers to fault, so only it consumes the plan; every
    /// other variant builds exactly as [`AlgorithmKind::build_with_deadline`].
    pub fn build_full(
        &self,
        slot_deadline_ms: Option<f64>,
        shard_faults: &ShardFaultPlan,
    ) -> Box<dyn OnlineAlgorithm + Send> {
        match *self {
            AlgorithmKind::Approx { eps } => Box::new(
                OnlineRegularized::with_epsilon(eps).with_slot_deadline_ms(slot_deadline_ms),
            ),
            AlgorithmKind::ApproxExplicit { eps } => Box::new(
                OnlineRegularized::with_epsilon(eps)
                    .with_explicit_capacity()
                    .with_slot_deadline_ms(slot_deadline_ms),
            ),
            AlgorithmKind::Greedy => Box::new(OnlineGreedy::new()),
            AlgorithmKind::PerfOpt => Box::new(PerfOpt::new()),
            AlgorithmKind::OperOpt => Box::new(OperOpt::new()),
            AlgorithmKind::StatOpt => Box::new(StatOpt::new()),
            AlgorithmKind::StaticProportional => {
                Box::new(StaticPolicy::new(StaticVariant::Proportional))
            }
            AlgorithmKind::StaticFirstSlot => {
                Box::new(StaticPolicy::new(StaticVariant::FirstSlotOpt))
            }
            AlgorithmKind::StaticLocal => Box::new(StaticPolicy::new(StaticVariant::Local)),
            AlgorithmKind::Sharded { eps, shards } => Box::new(
                OnlineSharded::new(shards)
                    .with_epsilon(eps)
                    .with_chaos(shard_faults.to_chaos())
                    .with_slot_deadline_ms(slot_deadline_ms),
            ),
        }
    }

    /// Stable display name (matches the paper's labels).
    pub fn label(&self) -> String {
        match *self {
            AlgorithmKind::Approx { .. } => "online-approx".into(),
            AlgorithmKind::ApproxExplicit { .. } => "online-approx".into(),
            AlgorithmKind::Greedy => "online-greedy".into(),
            AlgorithmKind::PerfOpt => "perf-opt".into(),
            AlgorithmKind::OperOpt => "oper-opt".into(),
            AlgorithmKind::StatOpt => "stat-opt".into(),
            AlgorithmKind::StaticProportional => "static-proportional".into(),
            AlgorithmKind::StaticFirstSlot => "static-first-slot".into(),
            AlgorithmKind::StaticLocal => "static-local".into(),
            AlgorithmKind::Sharded { .. } => "online-sharded".into(),
        }
    }
}

/// A complete experiment description: mobility, workload, prices, weights,
/// the algorithm roster, and how many seeded repetitions to average.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name (used in reports).
    pub name: String,
    /// Mobility source.
    pub mobility: MobilityKind,
    /// Number of time slots (the paper uses 60 one-minute slots).
    pub num_slots: usize,
    /// Workload distribution.
    pub workload: WorkloadDist,
    /// Ratio of dynamic to static cost weights (`μ` in Figure 4; 1 = equal).
    pub dynamic_weight: f64,
    /// Algorithms to evaluate (offline-opt always runs as the normalizer).
    pub algorithms: Vec<AlgorithmKind>,
    /// Independent repetitions (the paper uses 5).
    pub repetitions: usize,
    /// Base RNG seed; repetition `r` uses `seed + r`.
    pub seed: u64,
    /// Taxi-generator tuning (ignored for random-walk mobility).
    pub taxi: TaxiConfig,
    /// Price-process parameters (see `EXPERIMENTS.md` for the calibration
    /// of the defaults against the paper's reported magnitudes).
    pub prices: PriceConfig,
    /// Quality-cost units per kilometer of distance.
    pub delay_per_km: f64,
    /// Target system utilization (§V-A: 80%).
    pub utilization: f64,
    /// Faults injected into every repetition's instance (empty by
    /// default); see [`crate::faults`].
    pub faults: FaultPlan,
    /// Per-slot wall-clock budget in milliseconds for the deadline-aware
    /// algorithms (`None` = unlimited; absent in legacy scenario JSON).
    #[serde(default)]
    pub slot_deadline_ms: Option<f64>,
    /// Shard-worker faults injected into the sharded algorithm's
    /// coordination loop (inert by default; absent in legacy scenario
    /// JSON); see [`crate::faults::ShardFaultPlan`].
    #[serde(default)]
    pub shard_faults: ShardFaultPlan,
    /// Hostile workload events (flash crowds, demand waves, price spikes,
    /// rolling degradation) applied to every repetition's mobility and
    /// instance (inert by default; absent in legacy scenario JSON); see
    /// [`crate::hostile::HostilePlan`].
    #[serde(default)]
    pub hostile: HostilePlan,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            name: "default".into(),
            mobility: MobilityKind::Taxi { num_users: 40 },
            num_slots: 30,
            workload: WorkloadDist::default_power(),
            dynamic_weight: 1.0,
            algorithms: vec![
                AlgorithmKind::PerfOpt,
                AlgorithmKind::OperOpt,
                AlgorithmKind::StatOpt,
                AlgorithmKind::Greedy,
                AlgorithmKind::Approx { eps: 0.5 },
            ],
            repetitions: 5,
            seed: 2017,
            taxi: TaxiConfig::default(),
            prices: PriceConfig {
                reconfig_mean: 2.0,
                bandwidth_scale: 2.0,
                ..PriceConfig::default()
            },
            delay_per_km: 2.0,
            utilization: 0.8,
            faults: FaultPlan::none(),
            slot_deadline_ms: None,
            shard_faults: ShardFaultPlan::none(),
            hostile: HostilePlan::none(),
        }
    }
}

impl Scenario {
    /// The cost weights implied by `dynamic_weight`.
    pub fn weights(&self) -> CostWeights {
        CostWeights::with_dynamic_ratio(self.dynamic_weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_kinds_build_with_matching_names() {
        for kind in [
            AlgorithmKind::Approx { eps: 0.5 },
            AlgorithmKind::Greedy,
            AlgorithmKind::PerfOpt,
            AlgorithmKind::OperOpt,
            AlgorithmKind::StatOpt,
            AlgorithmKind::StaticProportional,
            AlgorithmKind::StaticFirstSlot,
            AlgorithmKind::StaticLocal,
            AlgorithmKind::Sharded {
                eps: 0.5,
                shards: 4,
            },
        ] {
            let alg = kind.build();
            assert_eq!(alg.name(), kind.label());
        }
    }

    #[test]
    fn scenario_round_trips_through_json() {
        let s = Scenario {
            slot_deadline_ms: Some(50.0),
            ..Scenario::default()
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back.name, s.name);
        assert_eq!(back.repetitions, s.repetitions);
        assert_eq!(back.slot_deadline_ms, Some(50.0));
    }

    #[test]
    fn legacy_scenario_json_without_deadline_parses() {
        let json = serde_json::to_string(&Scenario::default()).unwrap();
        let legacy = json.replace(",\"slot_deadline_ms\":null", "");
        assert_ne!(
            legacy, json,
            "expected the field to be present and removable"
        );
        let back: Scenario = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.slot_deadline_ms, None);
    }

    #[test]
    fn legacy_scenario_json_without_shard_faults_parses() {
        let json = serde_json::to_string(&Scenario::default()).unwrap();
        let legacy = json.replace(",\"shard_faults\":{\"seed\":0,\"faults\":[]}", "");
        assert_ne!(
            legacy, json,
            "expected the field to be present and removable"
        );
        let back: Scenario = serde_json::from_str(&legacy).unwrap();
        assert!(back.shard_faults.is_empty());
    }

    #[test]
    fn legacy_scenario_json_without_hostile_plan_parses() {
        let json = serde_json::to_string(&Scenario::default()).unwrap();
        let legacy = json.replace(",\"hostile\":{\"seed\":0,\"events\":[]}", "");
        assert_ne!(
            legacy, json,
            "expected the field to be present and removable"
        );
        let back: Scenario = serde_json::from_str(&legacy).unwrap();
        assert!(back.hostile.is_empty());
    }

    #[test]
    fn commute_mobility_reports_its_user_count() {
        let kind = MobilityKind::Commute { num_users: 17 };
        assert_eq!(kind.num_users(), 17);
    }

    #[test]
    fn shard_faults_reach_the_sharded_algorithm_only() {
        use crate::faults::ShardFaultKind;
        let plan = ShardFaultPlan {
            seed: 3,
            faults: vec![ShardFaultKind::PanicWithProbability { prob: 0.5 }],
        };
        // Every roster entry still builds with a fault plan supplied; the
        // non-sharded kinds ignore it.
        for kind in [
            AlgorithmKind::Approx { eps: 0.5 },
            AlgorithmKind::Greedy,
            AlgorithmKind::Sharded {
                eps: 0.5,
                shards: 4,
            },
        ] {
            let alg = kind.build_full(None, &plan);
            assert_eq!(alg.name(), kind.label());
        }
    }

    #[test]
    fn default_scenario_matches_paper_roster() {
        let s = Scenario::default();
        assert_eq!(s.algorithms.len(), 5);
        assert_eq!(s.repetitions, 5);
    }
}
