//! `sim` — the discrete-time experiment harness.
//!
//! Mirrors the Python simulator of the paper's §V: builds instances from
//! scenario descriptions ([`scenario`]), runs a set of algorithms against
//! the offline optimum over repeated seeds ([`runner`], one scoped thread
//! per repetition, with panics captured per repetition), optionally
//! corrupts the instances with a deterministic fault plan ([`faults`]),
//! aggregates empirical competitive ratios ([`metrics`]), and renders
//! aligned text tables / JSON reports ([`report`]).
//!
//! ```
//! use sim::scenario::{AlgorithmKind, MobilityKind, Scenario};
//!
//! # fn main() -> Result<(), edgealloc::Error> {
//! let scenario = Scenario {
//!     name: "smoke".into(),
//!     mobility: MobilityKind::RandomWalk { num_users: 6 },
//!     num_slots: 6,
//!     algorithms: vec![AlgorithmKind::Approx { eps: 0.5 }, AlgorithmKind::Greedy],
//!     repetitions: 1,
//!     seed: 7,
//!     ..Scenario::default()
//! };
//! let outcome = sim::runner::run_scenario(&scenario)?;
//! let approx = &outcome.algorithms[0];
//! assert!(approx.mean_ratio() >= 1.0 - 1e-6);
//! # Ok(())
//! # }
//! ```

pub mod faults;
pub mod hostile;
pub mod metrics;
pub mod report;
pub mod runner;
pub mod scenario;

pub use faults::{FaultKind, FaultPlan, ShardFaultKind, ShardFaultPlan};
pub use hostile::{HostileKind, HostilePlan};
pub use runner::{run_scenario, AlgorithmOutcome, RepFailure, ScenarioOutcome};
pub use scenario::{AlgorithmKind, MobilityKind, Scenario};
