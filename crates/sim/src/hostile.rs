//! Hostile workload generation for overload experiments.
//!
//! A [`HostilePlan`] is the overload-side sibling of
//! [`crate::faults::FaultPlan`]: where a fault plan *corrupts* an instance
//! (NaN prices, vanished capacity), a hostile plan keeps every value
//! well-formed but *adversarially shaped* — flash crowds that concentrate
//! demand on one station, diurnal waves that surge the whole population at
//! once, spot-price spikes, and rolling capacity degradation. The sentinel
//! and shedding rung (see `edgealloc::sentinel` / `edgealloc::shed`) are
//! what has to survive it.
//!
//! The plan acts in two places, both deterministic under the scenario
//! seed:
//!
//! 1. [`HostilePlan::shape_mobility`] reshapes the repetition's mobility
//!    trace (flash crowds pull attachments to one station);
//! 2. [`HostilePlan::apply`] installs per-slot demand/capacity scaling
//!    factors and price spikes on the generated instance — through
//!    [`Instance::scale_demand`]/[`Instance::scale_capacity`], so the
//!    surge bypasses construction-time validation exactly like a real
//!    mid-horizon overload and only the online view sees it.
//!
//! An empty plan is inert: it touches neither the mobility nor the
//! instance, keeping trajectories bit-identical to a run without hostile
//! wiring.

use edgealloc::instance::Instance;
use mobility::attach::MobilityInput;
use mobility::hostile::FlashCrowdConfig;
use mobility::stations::StationNetwork;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One hostile event class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum HostileKind {
    /// A flash crowd: users converge on `station` for
    /// `[start, start + duration)` with probability `attraction`, and
    /// every workload in the window is multiplied by `surge`.
    FlashCrowd {
        /// Station (edge-cloud index) the crowd converges on.
        station: usize,
        /// First slot of the crowd window.
        start: usize,
        /// Window length in slots.
        duration: usize,
        /// Per-user-slot probability of joining the crowd.
        attraction: f64,
        /// Demand multiplier inside the window (1 = attachment-only).
        surge: f64,
    },
    /// A diurnal demand wave: slot `t`'s workloads are scaled by
    /// `1 + amplitude · sin(2πt / period)` (clamped at zero).
    DemandWave {
        /// Wave period in slots.
        period: usize,
        /// Peak relative amplitude (e.g. `1.5` ⇒ up to 2.5× demand).
        amplitude: f64,
    },
    /// Spot-market price spikes: each `(slot, cloud)` operation price is
    /// multiplied by `factor` with probability `prob`.
    PriceSpike {
        /// Spike probability per (slot, cloud) pair.
        prob: f64,
        /// Price multiplier when a spike fires.
        factor: f64,
    },
    /// Rolling capacity degradation: starting at `start`, cloud `i` loses
    /// a `loss` fraction of its capacity for `slots_per_cloud` slots, one
    /// cloud after another (a rolling maintenance/outage sweep).
    RollingDegradation {
        /// First slot of the sweep.
        start: usize,
        /// Degraded-window length per cloud.
        slots_per_cloud: usize,
        /// Capacity fraction lost while degraded, clamped to `[0, 1]`.
        loss: f64,
    },
}

/// The hostile events injected into every repetition of a scenario.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HostilePlan {
    /// Seed for the deterministic per-(slot, cloud) spike rolls.
    #[serde(default)]
    pub seed: u64,
    /// Events, applied in order.
    #[serde(default)]
    pub events: Vec<HostileKind>,
}

/// SplitMix64-style hash of `(seed, a, b)` to a uniform value in `[0, 1)`,
/// so price-spike rolls are deterministic and independent of call order.
fn roll(seed: u64, a: u64, b: u64) -> f64 {
    let mut z =
        seed ^ a.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ b.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

impl HostilePlan {
    /// A plan that injects nothing (the default).
    pub fn none() -> Self {
        HostilePlan::default()
    }

    /// Whether the plan injects anything.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Reshapes a repetition's mobility trace: flash-crowd events pull
    /// attachments toward their station (see
    /// [`mobility::hostile::flash_crowd`]); the other event classes do not
    /// touch mobility. An empty plan returns `mob` unchanged without
    /// consuming randomness.
    pub fn shape_mobility<R: Rng + ?Sized>(
        &self,
        net: &StationNetwork,
        mob: MobilityInput,
        rng: &mut R,
    ) -> MobilityInput {
        let mut shaped = mob;
        for event in &self.events {
            if let HostileKind::FlashCrowd {
                station,
                start,
                duration,
                attraction,
                ..
            } = *event
            {
                let cfg = FlashCrowdConfig {
                    station,
                    start,
                    duration,
                    attraction,
                };
                shaped = mobility::hostile::flash_crowd(net, &shaped, &cfg, rng);
            }
        }
        shaped
    }

    /// Installs the plan's demand/capacity scaling factors and price
    /// spikes on the generated instance. Factors compose multiplicatively
    /// across events; out-of-range slots are ignored (a plan written for a
    /// long horizon may be reused on a short one).
    pub fn apply(&self, inst: &mut Instance) {
        let num_slots = inst.num_slots();
        let num_clouds = inst.num_clouds();
        for event in &self.events {
            match *event {
                HostileKind::FlashCrowd {
                    start,
                    duration,
                    surge,
                    ..
                } => {
                    for t in start..start.saturating_add(duration).min(num_slots) {
                        inst.scale_demand(t, surge);
                    }
                }
                HostileKind::DemandWave { period, amplitude } => {
                    if period == 0 {
                        continue;
                    }
                    for t in 0..num_slots {
                        let phase = 2.0 * std::f64::consts::PI * t as f64 / period as f64;
                        // Negative troughs clamp to zero inside scale_demand.
                        inst.scale_demand(t, 1.0 + amplitude * phase.sin());
                    }
                }
                HostileKind::PriceSpike { prob, factor } => {
                    let prob = if prob.is_finite() {
                        prob.clamp(0.0, 1.0)
                    } else {
                        0.0
                    };
                    for t in 0..num_slots {
                        for i in 0..num_clouds {
                            if roll(self.seed, t as u64, i as u64) < prob {
                                let spiked = inst.operation_prices_at(t)[i] * factor;
                                inst.inject_operation_price(t, i, spiked);
                            }
                        }
                    }
                }
                HostileKind::RollingDegradation {
                    start,
                    slots_per_cloud,
                    loss,
                } => {
                    let keep = 1.0
                        - if loss.is_finite() {
                            loss.clamp(0.0, 1.0)
                        } else {
                            0.0
                        };
                    for i in 0..num_clouds {
                        let lo = start.saturating_add(i.saturating_mul(slots_per_cloud));
                        let hi = lo.saturating_add(slots_per_cloud).min(num_slots);
                        for t in lo..hi.max(lo) {
                            inst.scale_capacity(t, i, keep);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn instance() -> Instance {
        Instance::fig1_example(2.1, true)
    }

    #[test]
    fn empty_plan_is_inert() {
        let plan = HostilePlan::none();
        assert!(plan.is_empty());
        let mut inst = instance();
        plan.apply(&mut inst);
        for t in 0..inst.num_slots() {
            assert!(inst.scaled_slot(t).is_none(), "slot {t} gained factors");
        }
        let net = mobility::rome_metro();
        let mob = mobility::random_walk::generate(&net, 4, 6, &mut StdRng::seed_from_u64(1));
        let shaped = plan.shape_mobility(&net, mob.clone(), &mut StdRng::seed_from_u64(2));
        assert_eq!(shaped, mob);
    }

    #[test]
    fn flash_crowd_surges_its_window_only() {
        let plan = HostilePlan {
            seed: 0,
            events: vec![HostileKind::FlashCrowd {
                station: 0,
                start: 1,
                duration: 2,
                attraction: 1.0,
                surge: 3.0,
            }],
        };
        let mut inst = instance();
        plan.apply(&mut inst);
        assert!(inst.scaled_slot(0).is_none());
        assert_eq!(inst.demand_factor(1), 3.0);
        assert_eq!(inst.demand_factor(2), 3.0);
        assert!(inst.scaled_slot(3).is_none());
    }

    #[test]
    fn demand_wave_oscillates_and_never_goes_negative() {
        // fig1 has 3 slots; period 3 puts a crest at t=1 and a trough at
        // t=2 (sin(4π/3) ≈ −0.87, so 1 + 2·sin goes negative).
        let plan = HostilePlan {
            seed: 0,
            events: vec![HostileKind::DemandWave {
                period: 3,
                amplitude: 2.0,
            }],
        };
        let mut inst = instance();
        plan.apply(&mut inst);
        assert_eq!(inst.demand_factor(0), 1.0); // sin(0) = 0
        assert!(inst.demand_factor(1) > 2.7); // crest: 1 + 2·sin(2π/3)
        assert_eq!(inst.demand_factor(2), 0.0); // trough clamps at zero
    }

    #[test]
    fn price_spikes_are_deterministic_and_bounded_by_prob() {
        let plan = HostilePlan {
            seed: 42,
            events: vec![HostileKind::PriceSpike {
                prob: 0.5,
                factor: 10.0,
            }],
        };
        let mut a = instance();
        let mut b = instance();
        plan.apply(&mut a);
        plan.apply(&mut b);
        let reference = instance();
        let mut spiked = 0usize;
        let mut total = 0usize;
        for t in 0..a.num_slots() {
            for i in 0..a.num_clouds() {
                assert_eq!(a.operation_prices_at(t)[i], b.operation_prices_at(t)[i]);
                total += 1;
                if a.operation_prices_at(t)[i] != reference.operation_prices_at(t)[i] {
                    spiked += 1;
                }
            }
        }
        assert!(spiked > 0, "no spike fired out of {total}");
        assert!(spiked < total, "every price spiked");
    }

    #[test]
    fn rolling_degradation_sweeps_one_cloud_at_a_time() {
        let plan = HostilePlan {
            seed: 0,
            events: vec![HostileKind::RollingDegradation {
                start: 0,
                slots_per_cloud: 1,
                loss: 0.5,
            }],
        };
        let mut inst = instance();
        plan.apply(&mut inst);
        assert_eq!(inst.capacity_factor(0, 0), 0.5);
        assert_eq!(inst.capacity_factor(0, 1), 1.0);
        assert_eq!(inst.capacity_factor(1, 1), 0.5);
        assert_eq!(inst.capacity_factor(1, 0), 1.0);
    }

    #[test]
    fn plan_round_trips_through_json_and_legacy_json_parses() {
        let plan = HostilePlan {
            seed: 3,
            events: vec![
                HostileKind::FlashCrowd {
                    station: 2,
                    start: 5,
                    duration: 10,
                    attraction: 0.8,
                    surge: 2.5,
                },
                HostileKind::PriceSpike {
                    prob: 0.1,
                    factor: 5.0,
                },
            ],
        };
        let json = serde_json::to_string(&plan).unwrap();
        let back: HostilePlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        let empty: HostilePlan = serde_json::from_str("{}").unwrap();
        assert!(empty.is_empty());
    }
}
