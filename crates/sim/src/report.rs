//! Plain-text tables and JSON export for experiment results.

use crate::metrics::Series;
use crate::runner::ScenarioOutcome;
use std::fmt::Write as _;

/// Renders a scenario outcome as an aligned text table of empirical
/// competitive ratios (mean ± sd), normalized by offline-opt — the layout
/// of the paper's Figures 2–3 in tabular form.
pub fn ratio_table(outcome: &ScenarioOutcome) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "scenario: {}", outcome.name);
    let name_w = outcome
        .algorithms
        .iter()
        .map(|a| a.name.len())
        .max()
        .unwrap_or(4)
        .max("algorithm".len());
    let _ = writeln!(
        out,
        "{:<name_w$}  {:>10}  {:>8}",
        "algorithm", "ratio", "sd"
    );
    for alg in &outcome.algorithms {
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>10.4}  {:>8.4}",
            alg.name,
            alg.mean_ratio(),
            alg.sd_ratio()
        );
    }
    out
}

/// Renders a set of sweep series as an aligned text table: one row per x
/// value, one column per series — the layout of Figures 4–5.
///
/// # Panics
///
/// Panics if the series have inconsistent x grids.
pub fn series_table(x_label: &str, series: &[Series]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{x_label:>12}");
    for s in series {
        let _ = write!(out, "  {:>22}", s.label);
    }
    let _ = writeln!(out);
    let npoints = series.first().map_or(0, |s| s.points.len());
    for s in series {
        assert_eq!(s.points.len(), npoints, "inconsistent series lengths");
    }
    for p in 0..npoints {
        let x = series[0].points[p].x;
        let _ = write!(out, "{x:>12.4}");
        for s in series {
            assert!(
                (s.points[p].x - x).abs() < 1e-9,
                "inconsistent x grids across series"
            );
            let _ = write!(out, "  {:>14.4} ±{:>6.4}", s.points[p].mean, s.points[p].sd);
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders per-slot cost timelines as CSV (for external plotting):
/// `algorithm,slot,operation,quality,reconfig,migration,total`.
pub fn timeline_csv(rows: &[(String, Vec<edgealloc::CostBreakdown>)]) -> String {
    let mut out = String::from("algorithm,slot,operation,quality,reconfig,migration,total\n");
    for (name, series) in rows {
        for (t, c) in series.iter().enumerate() {
            let _ = writeln!(
                out,
                "{name},{t},{:.6},{:.6},{:.6},{:.6},{:.6}",
                c.operation,
                c.quality,
                c.reconfig,
                c.migration,
                c.total()
            );
        }
    }
    out
}

/// Serializes series to JSON (for external plotting).
///
/// # Panics
///
/// Serialization of these plain data types cannot fail.
pub fn series_json(series: &[Series]) -> String {
    serde_json::to_string_pretty(series).expect("series serialize")
}

/// Serializes a scenario outcome to JSON.
///
/// # Panics
///
/// Serialization of these plain data types cannot fail.
pub fn outcome_json(outcome: &ScenarioOutcome) -> String {
    serde_json::to_string_pretty(outcome).expect("outcome serialize")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Series;
    use crate::runner::{AlgorithmOutcome, ScenarioOutcome};

    fn fake_outcome() -> ScenarioOutcome {
        ScenarioOutcome {
            name: "t".into(),
            offline_totals: vec![10.0],
            algorithms: vec![AlgorithmOutcome {
                name: "online-approx".into(),
                ratios: vec![1.1, 1.2],
                totals: vec![11.0, 12.0],
                breakdowns: vec![],
                health: vec![],
            }],
            failures: vec![],
        }
    }

    #[test]
    fn ratio_table_contains_names_and_values() {
        let t = ratio_table(&fake_outcome());
        assert!(t.contains("online-approx"));
        assert!(t.contains("1.15"));
    }

    #[test]
    fn series_table_aligns_two_series() {
        let mut a = Series::new("a");
        a.push_from(1.0, &[1.0]);
        let mut b = Series::new("b");
        b.push_from(1.0, &[2.0]);
        let t = series_table("x", &[a, b]);
        assert!(t.lines().count() == 2);
        assert!(t.contains('a') && t.contains('b'));
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn series_table_rejects_mismatched_grids() {
        let mut a = Series::new("a");
        a.push_from(1.0, &[1.0]);
        let mut b = Series::new("b");
        b.push_from(2.0, &[2.0]);
        let _ = series_table("x", &[a, b]);
    }

    #[test]
    fn timeline_csv_has_header_and_rows() {
        let rows = vec![(
            "alg".to_string(),
            vec![edgealloc::CostBreakdown {
                operation: 1.0,
                quality: 2.0,
                reconfig: 0.0,
                migration: 0.5,
            }],
        )];
        let csv = timeline_csv(&rows);
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("algorithm,slot"));
        let row = lines.next().unwrap();
        assert!(row.starts_with("alg,0,1.0"));
        assert!(row.ends_with("3.500000"));
    }

    #[test]
    fn json_round_trips() {
        let mut s = Series::new("a");
        s.push_from(1.0, &[1.0, 2.0]);
        let j = series_json(&[s]);
        assert!(j.contains("\"label\": \"a\""));
        let oj = outcome_json(&fake_outcome());
        assert!(oj.contains("offline_totals"));
    }
}
