//! Aggregation helpers for experiment series.

use serde::Serialize;

/// A labelled series of (x, mean, sd) points — one line in a figure.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// Line label (algorithm name, typically).
    pub label: String,
    /// Points along the sweep.
    pub points: Vec<SeriesPoint>,
}

/// One aggregated point of a series.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SeriesPoint {
    /// Sweep coordinate (hour index, ε, μ, #users, …).
    pub x: f64,
    /// Mean over repetitions.
    pub mean: f64,
    /// Standard deviation over repetitions.
    pub sd: f64,
}

impl Series {
    /// An empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends an aggregated point from raw repetition values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn push_from(&mut self, x: f64, values: &[f64]) {
        let (mean, sd) = edgealloc::ratio::mean_sd(values);
        self.points.push(SeriesPoint { x, mean, sd });
    }

    /// The maximum mean across points.
    pub fn max_mean(&self) -> f64 {
        self.points.iter().map(|p| p.mean).fold(f64::NAN, f64::max)
    }

    /// The minimum mean across points.
    pub fn min_mean(&self) -> f64 {
        self.points.iter().map(|p| p.mean).fold(f64::NAN, f64::min)
    }
}

/// Relative improvement of `ours` over `baseline` (`(b − o)/b`), as used in
/// the paper's "up to 60%/70% improvement over online-greedy" claims.
pub fn improvement(ours: f64, baseline: f64) -> f64 {
    (baseline - ours) / baseline
}

/// The `p`-th percentile (`0 ≤ p ≤ 100`) of `values` by linear
/// interpolation between closest ranks; NaN for an empty slice. Used by
/// the profiling binaries for per-slot latency p50/p95.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = (p / 100.0).clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_aggregates_mean_and_sd() {
        let mut s = Series::new("alg");
        s.push_from(1.0, &[1.0, 3.0]);
        assert_eq!(s.points[0].mean, 2.0);
        assert_eq!(s.points[0].sd, 1.0);
    }

    #[test]
    fn min_max_mean() {
        let mut s = Series::new("alg");
        s.push_from(0.0, &[1.0]);
        s.push_from(1.0, &[5.0]);
        assert_eq!(s.min_mean(), 1.0);
        assert_eq!(s.max_mean(), 5.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert!((percentile(&v, 50.0) - 2.5).abs() < 1e-12);
        assert!((percentile(&v, 95.0) - 3.85).abs() < 1e-12);
        assert!(percentile(&[], 50.0).is_nan());
        assert_eq!(percentile(&[7.0], 95.0), 7.0);
    }

    #[test]
    fn improvement_matches_paper_convention() {
        // Greedy 1.8, ours 1.1 → ~39% improvement.
        let imp = improvement(1.1, 1.8);
        assert!((imp - 0.3888).abs() < 1e-3);
    }
}
