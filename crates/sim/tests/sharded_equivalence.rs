//! Integration tests for the sharded algorithm: price-coordinated shard
//! decomposition through the whole online pipeline must land on the same
//! costs as the monolithic explicit-capacity solve — including when fault
//! injection forces sanitization and fallback rungs mid-horizon — and its
//! decisions must be feasible every slot.
//!
//! This is the ISSUE's acceptance gate: total cost within `1e-4` relative
//! of the monolithic comparator on a faulted 30-user × 24-slot taxi
//! horizon, all slots demand- and capacity-feasible.

use edgealloc::prelude::*;
use optim::convex::SchurKernel;
use shard::OnlineSharded;
use sim::runner::build_instance;
use sim::scenario::{MobilityKind, Scenario};
use sim::{FaultKind, FaultPlan};

/// The ISSUE-mandated shape: a faulted 30-user × 24-slot taxi horizon.
/// Debug builds run a shortened horizon: the release gate is the real
/// acceptance check, and the un-optimized barrier makes 24 slots × 4
/// algorithm runs take tens of minutes.
const NUM_SLOTS: usize = if cfg!(debug_assertions) { 6 } else { 24 };

fn taxi_scenario(faults: FaultPlan) -> Scenario {
    Scenario {
        name: "sharded-equivalence".into(),
        mobility: MobilityKind::Taxi { num_users: 30 },
        num_slots: NUM_SLOTS,
        repetitions: 1,
        seed: 11,
        faults,
        ..Scenario::default()
    }
}

/// Mid-horizon price corruption: slot 7 is sanitized (NaN price), slot 12
/// sees a finite 1e9 spike. Both are recoverable — the barrier still has a
/// strict interior everywhere, so the decomposition must stay engaged.
fn faulted_plan() -> FaultPlan {
    FaultPlan {
        faults: vec![
            FaultKind::PriceNan { slot: 5, cloud: 1 },
            FaultKind::PriceSpike {
                slot: 3,
                cloud: 0,
                value: 1e9,
            },
        ],
    }
}

/// A dead cloud for the whole horizon: the explicit-capacity barrier loses
/// its strict interior on every slot, so *both* pipelines must ride the
/// degradation ladder down to the per-slot LP — identically.
fn dead_cloud_plan() -> FaultPlan {
    FaultPlan {
        faults: vec![FaultKind::ZeroCapacity { cloud: 2 }],
    }
}

/// Runs one algorithm and returns (total cost on the sanitized instance,
/// allocations, health summary).
fn run(inst: &Instance, alg: &mut dyn OnlineAlgorithm) -> (f64, Vec<Allocation>, HealthSummary) {
    let traj = run_online(inst, alg).expect("horizon");
    let (eval, _) = inst.sanitized();
    let cost = evaluate_trajectory(&eval, &traj.allocations).total();
    let health = traj.health_summary();
    (cost, traj.allocations, health)
}

fn assert_feasible(inst: &Instance, allocs: &[Allocation], who: &str) {
    let (eval, _) = inst.sanitized();
    for (t, x) in allocs.iter().enumerate() {
        for j in 0..eval.num_users() {
            assert!(
                x.user_total(j) >= eval.workloads()[j] - 1e-6,
                "{who}: slot {t} user {j} under-served ({} < {})",
                x.user_total(j),
                eval.workloads()[j]
            );
        }
        for i in 0..eval.num_clouds() {
            assert!(
                x.cloud_total(i) <= eval.system().capacity(i) + 1e-6,
                "{who}: slot {t} cloud {i} over capacity ({} > {})",
                x.cloud_total(i),
                eval.system().capacity(i)
            );
        }
    }
}

fn assert_sharded_matches_monolithic(
    inst: &Instance,
    shards: usize,
    expect_engaged: bool,
) -> HealthSummary {
    let mut mono = OnlineRegularized::with_defaults()
        .with_explicit_capacity()
        .with_schur_kernel(SchurKernel::Blocked);
    let (cost_m, allocs_m, _) = run(inst, &mut mono);

    let mut sharded = OnlineSharded::new(shards).with_schur_kernel(SchurKernel::Blocked);
    let (cost_s, allocs_s, health_s) = run(inst, &mut sharded);

    let rel = (cost_s - cost_m).abs() / cost_m.abs().max(1e-12);
    assert!(
        rel <= 1e-4,
        "S={shards}: sharded {cost_s} vs monolithic {cost_m} (relative {rel:.3e})"
    );
    assert_feasible(inst, &allocs_m, "monolithic");
    assert_feasible(inst, &allocs_s, "sharded");
    if expect_engaged {
        assert!(
            health_s.sharded_slots > 0,
            "S={shards}: the decomposition never engaged: {health_s:?}"
        );
    }
    health_s
}

#[test]
fn sharded_matches_monolithic_on_clean_taxi_horizon() {
    let inst = build_instance(&taxi_scenario(FaultPlan::none()), 0).expect("instance");
    for shards in [2, 4] {
        assert_sharded_matches_monolithic(&inst, shards, true);
    }
}

#[test]
fn sharded_matches_monolithic_under_fault_injection() {
    // Recoverable price corruption mid-horizon: sanitization rewrites the
    // NaN slot's inputs and the spike slot stays solvable, so the sharded
    // path must stay engaged and still land within tolerance of the
    // monolithic comparator walking the same sanitization.
    let inst = build_instance(&taxi_scenario(faulted_plan()), 0).expect("instance");
    for shards in [2, 4] {
        let health = assert_sharded_matches_monolithic(&inst, shards, true);
        assert!(
            health.sanitized_slots > 0,
            "S={shards}: the NaN price never forced sanitization: {health:?}"
        );
    }
}

#[test]
fn sharded_degrades_like_monolithic_when_a_cloud_is_dead() {
    // A zero-capacity cloud strips the explicit-capacity barrier of its
    // strict interior on every slot: neither pipeline can shard or solve
    // the barrier, and both must ride the degradation ladder down to the
    // per-slot LP — identically, so the costs still agree.
    let inst = build_instance(&taxi_scenario(dead_cloud_plan()), 0).expect("instance");
    let health = assert_sharded_matches_monolithic(&inst, 2, false);
    assert!(
        health.rungs.per_slot_lp > 0,
        "the dead cloud never pushed the sharded path onto the LP rung: {health:?}"
    );
}

#[test]
fn sharded_decisions_are_exactly_feasible_on_sharded_slots() {
    // Stronger than the pipeline gate: slots the coordinator decided
    // (shards ≥ 2) satisfy demand and capacity *exactly* under
    // floating-point summation — the projection's contract.
    let inst = build_instance(&taxi_scenario(FaultPlan::none()), 0).expect("instance");
    let mut alg = OnlineSharded::new(4);
    let traj = run_online(&inst, &mut alg).expect("horizon");
    let (eval, _) = inst.sanitized();
    let mut sharded_slots = 0;
    for (t, (x, h)) in traj.allocations.iter().zip(&traj.health).enumerate() {
        if h.shards < 2 {
            continue;
        }
        sharded_slots += 1;
        for j in 0..eval.num_users() {
            assert!(
                x.user_total(j) >= eval.workloads()[j],
                "slot {t} user {j}: {} < {}",
                x.user_total(j),
                eval.workloads()[j]
            );
        }
        for i in 0..eval.num_clouds() {
            assert!(
                x.cloud_total(i) <= eval.system().capacity(i),
                "slot {t} cloud {i}: {} > {}",
                x.cloud_total(i),
                eval.system().capacity(i)
            );
        }
    }
    assert!(sharded_slots > 0, "no slot exercised the projection");
}
