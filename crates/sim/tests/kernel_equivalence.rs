//! Integration tests for the user-blocked nested-Schur Newton kernel:
//! forcing [`SchurKernel::Blocked`] through the whole online pipeline must
//! produce the same trajectories and costs as the dense Woodbury kernel —
//! including when fault injection forces the degradation ladder through
//! sanitization, retries, and LP fallbacks mid-horizon.
//!
//! Both kernels are *forced* (not `Auto`): at 30 users the automatic
//! cutover would stay dense, and the point of the test is the arithmetic
//! equivalence of the two factorization paths, not the cutover heuristic.

use edgealloc::prelude::*;
use optim::convex::SchurKernel;
use sim::runner::build_instance;
use sim::scenario::{MobilityKind, Scenario};
use sim::{FaultKind, FaultPlan};

/// The ISSUE-mandated shape: a faulted 30-user × 24-slot taxi horizon.
fn taxi_scenario(faults: FaultPlan) -> Scenario {
    Scenario {
        name: "kernel-equivalence".into(),
        mobility: MobilityKind::Taxi { num_users: 30 },
        num_slots: 24,
        repetitions: 1,
        seed: 11,
        faults,
        ..Scenario::default()
    }
}

/// Runs one algorithm over `inst` and returns (total cost, per-slot
/// allocations, health summary).
fn run(inst: &Instance, alg: &mut OnlineRegularized) -> (f64, Vec<Allocation>, HealthSummary) {
    let traj = run_online(inst, alg).expect("horizon");
    let (eval, _) = inst.sanitized();
    let cost = evaluate_trajectory(&eval, &traj.allocations).total();
    let health = traj.health_summary();
    (cost, traj.allocations, health)
}

fn assert_kernels_equivalent(inst: &Instance) {
    let (cost_d, allocs_d, health_d) = run(
        inst,
        &mut OnlineRegularized::with_defaults().with_schur_kernel(SchurKernel::Dense),
    );
    let (cost_b, allocs_b, health_b) = run(
        inst,
        &mut OnlineRegularized::with_defaults().with_schur_kernel(SchurKernel::Blocked),
    );

    let rel = (cost_b - cost_d).abs() / cost_d.abs().max(1e-12);
    assert!(
        rel <= 1e-6,
        "blocked {cost_b} vs dense {cost_d} (relative {rel:.3e})"
    );

    // Same trajectory, slot by slot: the two kernels factor the same Newton
    // matrix, so the barrier iterates — and hence the rounded allocations —
    // must agree to solver tolerance.
    assert_eq!(allocs_d.len(), allocs_b.len());
    for (slot, (xd, xb)) in allocs_d.iter().zip(&allocs_b).enumerate() {
        for i in 0..xd.num_clouds() {
            for j in 0..xd.num_users() {
                let (a, b) = (xd.get(i, j), xb.get(i, j));
                assert!(
                    (a - b).abs() <= 1e-5 * a.abs().max(1.0),
                    "slot {slot} cloud {i} user {j}: dense {a} vs blocked {b}"
                );
            }
        }
    }

    // Kernel choice must not change *which* slots degrade or which ladder
    // rungs run.
    assert_eq!(health_d.rungs, health_b.rungs);
    assert_eq!(health_d.degraded_slots, health_b.degraded_slots);

    // And the runs really did exercise different kernels: every
    // barrier-solved slot of the blocked run reports "blocked", none of the
    // dense run's do.
    assert_eq!(health_d.blocked_kernel_slots, 0, "dense run used blocked");
    assert!(
        health_b.blocked_kernel_slots > 0,
        "blocked run never engaged the blocked kernel"
    );
}

#[test]
fn blocked_kernel_matches_dense_on_clean_taxi_horizon() {
    let inst = build_instance(&taxi_scenario(FaultPlan::none()), 0).expect("instance");
    assert_kernels_equivalent(&inst);
}

#[test]
fn blocked_kernel_matches_dense_under_fault_injection() {
    // Price corruption mid-horizon plus a dead cloud: sanitization rewrites
    // slot inputs and the ladder may leave the primary rung — the blocked
    // elimination must track the dense path through all of it.
    let plan = FaultPlan {
        faults: vec![
            FaultKind::PriceNan { slot: 7, cloud: 1 },
            FaultKind::PriceSpike {
                slot: 12,
                cloud: 0,
                value: 1e9,
            },
            FaultKind::ZeroCapacity { cloud: 2 },
        ],
    };
    let inst = build_instance(&taxi_scenario(plan), 0).expect("instance");
    assert_kernels_equivalent(&inst);
}
