//! The shard chaos gate: the ISSUE's fault-injected acceptance scenario.
//!
//! A 30-user × 24-slot taxi horizon runs with shard workers that panic,
//! straggle, and corrupt their offers — deterministically, per
//! [`shard::ChaosConfig`]. The run must not abort a single slot: every
//! slot produces a feasible allocation (exactly feasible when the
//! coordinator decided it), every certified duality gap stays
//! non-negative after the staleness correction, total cost stays within
//! 5% of the fault-free sharded run, and the fault-tolerance telemetry
//! records the machinery actually firing. With the fault plan disabled
//! the trajectory is bit-identical to a run without chaos wired in.

use edgealloc::prelude::*;
use shard::OnlineSharded;
use sim::runner::build_instance;
use sim::scenario::{MobilityKind, Scenario};
use sim::{ShardFaultKind, ShardFaultPlan};

/// The ISSUE-mandated shape. Debug builds run a shortened horizon: the
/// release gate (CI's `shard-chaos` job) is the real acceptance check,
/// and the un-optimized barrier makes 24 chaos slots take tens of
/// minutes.
const NUM_SLOTS: usize = if cfg!(debug_assertions) { 6 } else { 24 };

fn taxi_scenario() -> Scenario {
    Scenario {
        name: "shard-chaos".into(),
        mobility: MobilityKind::Taxi { num_users: 30 },
        num_slots: NUM_SLOTS,
        repetitions: 1,
        seed: 11,
        ..Scenario::default()
    }
}

/// The acceptance fault mix: panics above the mandated 0.1 floor,
/// stragglers, and offer corruption, all from one recorded seed.
fn chaos_plan() -> ShardFaultPlan {
    ShardFaultPlan {
        seed: 7,
        faults: vec![
            ShardFaultKind::PanicWithProbability { prob: 0.15 },
            ShardFaultKind::InjectedDelay {
                prob: 0.2,
                millis: 25.0,
            },
            ShardFaultKind::OfferCorruption { prob: 0.1 },
        ],
    }
}

fn run_sharded(inst: &Instance, plan: &ShardFaultPlan) -> edgealloc::algorithms::Trajectory {
    let mut alg = OnlineSharded::new(4)
        .with_epsilon(0.5)
        .with_chaos(plan.to_chaos());
    run_online(inst, &mut alg).expect("chaos horizon completes")
}

#[test]
fn chaos_run_completes_every_slot_feasibly_within_cost_tolerance() {
    let inst = build_instance(&taxi_scenario(), 0).expect("instance");
    let clean = run_sharded(&inst, &ShardFaultPlan::none());
    let chaos = run_sharded(&inst, &chaos_plan());

    // Zero aborted slots: the trajectory covers the whole horizon.
    assert_eq!(chaos.allocations.len(), inst.num_slots());

    // Feasibility every slot; *exact* feasibility where the coordinator
    // decided (shards ≥ 2) — staleness may cost optimality, never
    // feasibility.
    for (t, (x, h)) in chaos.allocations.iter().zip(&chaos.health).enumerate() {
        let exact = h.shards >= 2;
        let slack = if exact { 0.0 } else { 1e-6 };
        for j in 0..inst.num_users() {
            assert!(
                x.user_total(j) >= inst.workloads()[j] - slack,
                "slot {t} user {j}: {} < {} (exact={exact})",
                x.user_total(j),
                inst.workloads()[j]
            );
        }
        for i in 0..inst.num_clouds() {
            assert!(
                x.cloud_total(i) <= inst.system().capacity(i) + slack,
                "slot {t} cloud {i}: {} > {} (exact={exact})",
                x.cloud_total(i),
                inst.system().capacity(i)
            );
        }
        // The staleness-corrected certificate stays valid: a certified
        // gap is never negative (the coordinator discards a bound that
        // would certify below the primal instead of reporting it).
        if let Some(gap) = h.duality_gap {
            assert!(
                gap >= 0.0 && !gap.is_nan(),
                "slot {t}: invalid certified gap {gap}"
            );
        }
    }

    // Chaos costs something, but bounded: within 5% of the fault-free
    // sharded run on the same instance.
    let cost_clean = evaluate_trajectory(&inst, &clean.allocations).total();
    let cost_chaos = evaluate_trajectory(&inst, &chaos.allocations).total();
    let rel = (cost_chaos - cost_clean) / cost_clean.abs().max(1e-12);
    assert!(
        rel <= 0.05,
        "chaos cost {cost_chaos} vs clean {cost_clean} (regression {rel:.3e})"
    );

    // The fault-tolerance machinery demonstrably fired.
    let summary = chaos.health_summary();
    let fired = summary.shard_retries
        + summary.stale_offers
        + summary.quarantined_offers
        + summary.breaker_trips
        + summary.degraded_rounds;
    assert!(
        fired > 0,
        "no fault-tolerance telemetry recorded: {summary:?}"
    );
}

#[test]
fn chaos_runs_are_deterministic_given_the_fault_seed() {
    let inst = build_instance(&taxi_scenario(), 0).expect("instance");
    let a = run_sharded(&inst, &chaos_plan());
    let b = run_sharded(&inst, &chaos_plan());
    for (t, (xa, xb)) in a.allocations.iter().zip(&b.allocations).enumerate() {
        for i in 0..inst.num_clouds() {
            for j in 0..inst.num_users() {
                assert_eq!(
                    xa.get(i, j),
                    xb.get(i, j),
                    "slot {t}: chaos rerun diverged at ({i}, {j})"
                );
            }
        }
    }
    let (ha, hb) = (a.health_summary(), b.health_summary());
    assert_eq!(ha.shard_retries, hb.shard_retries);
    assert_eq!(ha.stale_offers, hb.stale_offers);
    assert_eq!(ha.quarantined_offers, hb.quarantined_offers);
    assert_eq!(ha.breaker_trips, hb.breaker_trips);
}

#[test]
fn disabled_fault_plan_is_bit_identical_to_an_unwired_run() {
    // The PR 5 equivalence guarantee: an empty fault plan keeps the
    // sharded trajectory bit-identical to a build with no chaos config.
    let inst = build_instance(&taxi_scenario(), 0).expect("instance");
    let wired = run_sharded(&inst, &ShardFaultPlan::none());
    let mut plain = OnlineSharded::new(4).with_epsilon(0.5);
    let unwired = run_online(&inst, &mut plain).expect("plain horizon");
    for (t, (xa, xb)) in wired
        .allocations
        .iter()
        .zip(&unwired.allocations)
        .enumerate()
    {
        for i in 0..inst.num_clouds() {
            for j in 0..inst.num_users() {
                assert_eq!(
                    xa.get(i, j),
                    xb.get(i, j),
                    "slot {t}: empty fault plan changed the decision at ({i}, {j})"
                );
            }
        }
    }
}
