//! Integration tests for the persistent-workspace online solve path:
//! [`OnlineRegularized`] with cross-slot solver reuse must produce the same
//! trajectories as the fresh-build-per-slot path over a *full* taxi
//! scenario — including when fault injection forces the degradation ladder
//! through sanitization, retries, and LP fallbacks with a cached workspace
//! in play.

use edgealloc::prelude::*;
use sim::runner::build_instance;
use sim::scenario::{MobilityKind, Scenario};
use sim::{FaultKind, FaultPlan};

/// A taxi-mobility scenario sized like a (small) paper experiment.
fn taxi_scenario(faults: FaultPlan) -> Scenario {
    Scenario {
        name: "workspace-equivalence".into(),
        mobility: MobilityKind::Taxi { num_users: 12 },
        num_slots: 10,
        repetitions: 1,
        seed: 7,
        faults,
        ..Scenario::default()
    }
}

/// Runs one algorithm over `inst` and returns (total cost, health summary).
fn run(inst: &Instance, alg: &mut OnlineRegularized) -> (f64, HealthSummary) {
    let traj = run_online(inst, alg).expect("horizon");
    // Faulted instances can carry non-finite prices; evaluate on the
    // sanitized copy exactly like `sim::runner` does.
    let (eval, _) = inst.sanitized();
    (
        evaluate_trajectory(&eval, &traj.allocations).total(),
        traj.health_summary(),
    )
}

fn assert_equivalent(inst: &Instance) {
    let (cost_ws, health_ws) = run(inst, &mut OnlineRegularized::with_defaults());
    let (cost_fresh, health_fresh) = run(
        inst,
        &mut OnlineRegularized::with_defaults().without_workspace_reuse(),
    );
    let rel = (cost_ws - cost_fresh).abs() / cost_fresh.abs().max(1e-12);
    assert!(
        rel <= 1e-6,
        "workspace {cost_ws} vs fresh {cost_fresh} (relative {rel:.3e})"
    );
    // Both paths must walk the same degradation-ladder rungs: caching the
    // workspace must not change *which* slots degrade.
    assert_eq!(health_ws.rungs, health_fresh.rungs);
    assert_eq!(health_ws.degraded_slots, health_fresh.degraded_slots);
}

#[test]
fn workspace_path_matches_fresh_path_on_clean_taxi_scenario() {
    let inst = build_instance(&taxi_scenario(FaultPlan::none()), 0).expect("instance");
    assert_equivalent(&inst);
}

#[test]
fn workspace_path_matches_fresh_path_under_fault_injection() {
    // Price corruption mid-horizon plus a dead cloud: sanitization rewrites
    // slot inputs and the ladder may leave the primary rung — all with the
    // cached workspace carrying across the disruption.
    let plan = FaultPlan {
        faults: vec![
            FaultKind::PriceNan { slot: 3, cloud: 1 },
            FaultKind::PriceSpike {
                slot: 5,
                cloud: 0,
                value: 1e9,
            },
            FaultKind::ZeroCapacity { cloud: 2 },
        ],
    };
    let inst = build_instance(&taxi_scenario(plan), 0).expect("instance");
    assert_equivalent(&inst);
}
