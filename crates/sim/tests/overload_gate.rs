//! The overload gate: the ISSUE's hostile-workload acceptance scenario.
//!
//! A 30-user × 24-slot random-walk horizon is hit by a flash crowd that
//! surges aggregate demand to ~2× total capacity over the middle window.
//! The run must not abort a single slot: the sentinel classifies every
//! surged slot Overloaded, the shedding rung defers the minimum-penalty
//! user set to the overflow tier, the survivors get an *exactly* feasible
//! allocation, the shed workload and penalty stay within 1.1× of the
//! shedding-LP relaxation's lower bound, and seeded replays are
//! bit-identical. On a benign horizon the sentinel-enabled build is
//! bit-identical to a run with shedding disabled.

use edgealloc::algorithms::{OnlineRegularized, SlotInput};
use edgealloc::health::FallbackRung;
use edgealloc::instance::Instance;
use edgealloc::prelude::*;
use edgealloc::sentinel::SentinelVerdict;
use edgealloc::shed::{plan_shedding, ShedConfig, ShedDecision};
use optim::budget::SolveBudget;
use shard::OnlineSharded;
use sim::runner::build_instance;
use sim::scenario::{MobilityKind, Scenario};
use sim::{HostileKind, HostilePlan};

/// The ISSUE-mandated shape. Debug builds run a shortened horizon: the
/// release gate (CI's `overload-chaos` job) is the real acceptance check,
/// and the un-optimized barrier makes 24 surged slots take minutes.
const NUM_SLOTS: usize = if cfg!(debug_assertions) { 8 } else { 24 };
const NUM_USERS: usize = 30;

/// Flash crowd over the middle half of the horizon. The scenario
/// provisions capacity at 80% utilization (ΣC = 1.25·Σλ), so a 2.5×
/// demand surge puts the window at exactly 2× aggregate capacity.
fn overload_scenario() -> Scenario {
    Scenario {
        name: "overload-gate".into(),
        mobility: MobilityKind::RandomWalk {
            num_users: NUM_USERS,
        },
        num_slots: NUM_SLOTS,
        repetitions: 1,
        seed: 8,
        hostile: HostilePlan {
            seed: 8,
            events: vec![HostileKind::FlashCrowd {
                station: 0,
                start: NUM_SLOTS / 4,
                duration: NUM_SLOTS / 2,
                attraction: 0.8,
                surge: 2.5,
            }],
        },
        ..Scenario::default()
    }
}

fn surge_window() -> std::ops::Range<usize> {
    (NUM_SLOTS / 4)..(NUM_SLOTS / 4 + NUM_SLOTS / 2)
}

/// The slot's online view (scaled when hostile factors are installed) and
/// its independently recomputed shedding decision.
fn recompute_decision(inst: &Instance, t: usize) -> Option<ShedDecision> {
    let scaled = inst.scaled_slot(t);
    let input = match &scaled {
        Some(s) => s.as_input(inst, t),
        None => SlotInput::from_instance(inst, t),
    };
    plan_shedding(&input, &ShedConfig::default(), &SolveBudget::unlimited()).ok()
}

/// Asserts the gate's per-slot guarantees on one trajectory.
fn assert_gate(inst: &Instance, traj: &edgealloc::algorithms::Trajectory, label: &str) {
    assert_eq!(traj.allocations.len(), NUM_SLOTS, "{label}: missing slots");
    let window = surge_window();
    for (t, h) in traj.health.iter().enumerate() {
        // Zero aborts anywhere: overload is absorbed, never carried.
        assert_ne!(
            h.rung,
            FallbackRung::CarryForward,
            "{label}: slot {t} aborted: {h:?}"
        );
        let x = &traj.allocations[t];
        if window.contains(&t) {
            assert_eq!(
                h.sentinel_verdict,
                Some(SentinelVerdict::Overloaded),
                "{label}: surged slot {t} not flagged"
            );
            assert_eq!(h.rung, FallbackRung::Shedding, "{label}: slot {t}: {h:?}");
            assert!(h.shed_users > 0, "{label}: slot {t} shed nobody");
            assert!(h.shed_penalty > 0.0, "{label}: slot {t} penalty zero");

            // Exact feasibility: capacity as written, survivors served in
            // full against the *surged* workloads.
            let decision = recompute_decision(inst, t).expect("surged slot has a plan");
            for i in 0..inst.num_clouds() {
                assert!(
                    x.cloud_total(i) <= inst.system().capacity(i),
                    "{label}: slot {t} cloud {i} exceeds capacity exactly"
                );
            }
            let scaled = inst.scaled_slot(t).expect("surged slot is scaled");
            let input = scaled.as_input(inst, t);
            for &j in &decision.survivors {
                assert!(
                    x.user_total(j) >= input.workloads[j],
                    "{label}: slot {t} survivor {j} under-served exactly"
                );
            }
            // Minimality: within 1.1× of the LP relaxation's lower bound.
            assert!(
                decision.shed_workload <= 1.1 * decision.required_shed.max(f64::MIN_POSITIVE),
                "{label}: slot {t} shed {} vs required {}",
                decision.shed_workload,
                decision.required_shed
            );
            assert!(
                decision.penalty <= 1.1 * decision.penalty_lower_bound.max(f64::MIN_POSITIVE),
                "{label}: slot {t} penalty {} vs LP bound {}",
                decision.penalty,
                decision.penalty_lower_bound
            );
            // The trajectory's recorded penalty is the recomputed plan's
            // (the rung runs the same deterministic planner).
            assert!(
                (h.shed_penalty - decision.penalty).abs() <= 1e-9 * (1.0 + decision.penalty),
                "{label}: slot {t} recorded penalty {} != plan {}",
                h.shed_penalty,
                decision.penalty
            );
        } else {
            assert_eq!(h.shed_users, 0, "{label}: benign slot {t} shed");
            assert!(
                x.capacity_excess(inst.system().capacities()) < 1e-5,
                "{label}: benign slot {t} over capacity"
            );
        }
    }
    let summary = traj.health_summary();
    assert_eq!(
        summary.overloaded_slots,
        window.len(),
        "{label}: {summary:?}"
    );
    assert_eq!(summary.rungs.shedding, window.len(), "{label}: {summary:?}");
    assert_eq!(summary.rungs.carry_forward, 0, "{label}: {summary:?}");
}

#[test]
fn flash_crowd_horizon_survives_with_minimal_shedding() {
    let inst = build_instance(&overload_scenario(), 0).expect("instance builds");
    let mut approx = OnlineRegularized::with_defaults().with_explicit_capacity();
    let traj = run_online(&inst, &mut approx).expect("approx horizon");
    assert_gate(&inst, &traj, "online-approx");

    let mut sharded = OnlineSharded::new(4);
    let straj = run_online(&inst, &mut sharded).expect("sharded horizon");
    assert_gate(&inst, &straj, "online-sharded");
}

#[test]
fn overload_replays_are_bit_identical() {
    let inst = build_instance(&overload_scenario(), 0).expect("instance builds");
    let mut a = OnlineRegularized::with_defaults().with_explicit_capacity();
    let ta = run_online(&inst, &mut a).expect("first run");
    let mut b = OnlineRegularized::with_defaults().with_explicit_capacity();
    let tb = run_online(&inst, &mut b).expect("second run");
    for (t, (xa, xb)) in ta.allocations.iter().zip(&tb.allocations).enumerate() {
        assert_eq!(xa.as_flat(), xb.as_flat(), "slot {t} diverged on replay");
    }
    // The instance build itself is seeded: a rebuilt instance replays too.
    let inst2 = build_instance(&overload_scenario(), 0).expect("rebuild");
    let mut c = OnlineRegularized::with_defaults().with_explicit_capacity();
    let tc = run_online(&inst2, &mut c).expect("rebuilt run");
    for (t, (xa, xc)) in ta.allocations.iter().zip(&tc.allocations).enumerate() {
        assert_eq!(xa.as_flat(), xc.as_flat(), "slot {t} diverged on rebuild");
    }
}

#[test]
fn benign_horizon_is_bit_identical_with_shedding_wired_in() {
    let benign = Scenario {
        hostile: HostilePlan::none(),
        ..overload_scenario()
    };
    let inst = build_instance(&benign, 0).expect("instance builds");
    let mut on = OnlineRegularized::with_defaults().with_explicit_capacity();
    let ta = run_online(&inst, &mut on).expect("sentinel-enabled run");
    let mut off = OnlineRegularized::with_defaults()
        .with_explicit_capacity()
        .without_shedding();
    let tb = run_online(&inst, &mut off).expect("shedding-disabled run");
    for (t, (xa, xb)) in ta.allocations.iter().zip(&tb.allocations).enumerate() {
        assert_eq!(
            xa.as_flat(),
            xb.as_flat(),
            "slot {t}: sentinel changed a benign decision"
        );
    }
    for h in &ta.health {
        assert_eq!(h.shed_users, 0);
        assert_ne!(h.sentinel_verdict, Some(SentinelVerdict::Overloaded));
    }
}
