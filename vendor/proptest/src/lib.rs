//! Vendored stand-in for the subset of `proptest` this workspace uses, for
//! fully offline builds (see DESIGN.md "Vendored dependency stand-ins").
//!
//! Covers the [`proptest!`] macro (with `#![proptest_config(..)]`, `pat in
//! strategy` bindings, and `prop_assert!`/`prop_assert_eq!`), [`Strategy`]
//! with `prop_map`, numeric range strategies, tuple strategies, and
//! [`collection::vec`]. Unlike the real crate there is no shrinking and no
//! persisted failure seeds: each test derives a fixed seed from its own
//! path, so runs are deterministic and failures reproduce exactly.

/// Deterministic per-test random source (xoshiro256++ seeded from a hash
/// of the test path).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds the generator for a named test, seeding from an FNV-1a hash
    /// of the name so every test gets its own reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, bound)`; bias < 2⁻⁶⁴ via 128-bit multiply.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample below 0");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Per-block configuration; only `cases` is observed.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating random values of `Value`.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes every generated value with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }
        }
    )*};
}
int_range_strategies!(usize, u64, u32, u16, u8);

macro_rules! float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + rng.unit_f64() as $t * (hi - lo)
            }
        }
    )*};
}
float_range_strategies!(f64, f32);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies (only `vec` is provided).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: an exact `usize` or a
    /// half-open `Range<usize>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeBounds {
        lo: usize,
        hi_exclusive: usize,
    }

    /// Types convertible into [`SizeBounds`].
    pub trait IntoSizeBounds {
        /// Performs the conversion.
        fn into_bounds(self) -> SizeBounds;
    }

    impl IntoSizeBounds for usize {
        fn into_bounds(self) -> SizeBounds {
            SizeBounds {
                lo: self,
                hi_exclusive: self + 1,
            }
        }
    }

    impl IntoSizeBounds for core::ops::Range<usize> {
        fn into_bounds(self) -> SizeBounds {
            assert!(self.start < self.end, "empty vec size range");
            SizeBounds {
                lo: self.start,
                hi_exclusive: self.end,
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeBounds,
    }

    /// A strategy producing `Vec`s of `element` draws with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeBounds) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into_bounds(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Declares property tests: each `fn name(pat in strategy, ...)` becomes a
/// `#[test]` that redraws its bindings `cases` times and runs the body.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`] — expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                let _ = __case;
                let ($($arg,)+) =
                    ($($crate::Strategy::generate(&($strat), &mut __rng),)+);
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// The conventional glob import: strategy/config types plus the macros.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Just, Map, ProptestConfig, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, f64)> {
        (1usize..5, 0.0f64..1.0).prop_map(|(n, x)| (n * 2, x))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_respect_bounds(n in 2usize..5, x in -1.0f64..1.0) {
            prop_assert!((2..5).contains(&n));
            prop_assert!((-1.0..1.0).contains(&x));
        }

        #[test]
        fn tuple_patterns_bind((n, x) in pair()) {
            prop_assert_eq!(n % 2, 0);
            prop_assert!((0.0..2.0).contains(&x));
        }

        #[test]
        fn vec_lengths_respect_bounds(
            xs in collection::vec(1u32..9, 4..25),
            ys in collection::vec(0.0f64..1.0, 7),
        ) {
            prop_assert!((4..25).contains(&xs.len()));
            prop_assert_eq!(ys.len(), 7);
            prop_assert!(xs.iter().all(|&v| (1..9).contains(&v)));
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let mut c = TestRng::for_test("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
