//! Vendored stand-in for the subset of `criterion` this workspace uses,
//! for fully offline builds (see DESIGN.md "Vendored dependency
//! stand-ins").
//!
//! Keeps the real harness's API shape — `benchmark_group`,
//! `bench_with_input`, `BenchmarkId`, `criterion_group!`/`criterion_main!`
//! — but replaces its statistics with a plain timed loop: per benchmark it
//! warms up once, runs `sample_size` timed batches, and prints
//! mean/min/max per iteration. Good enough to compare orders of magnitude
//! and catch gross regressions; not a statistically rigorous benchmark.

use std::time::Instant;

/// Prevents the optimizer from discarding a value (same as the real
/// crate's, which is this `std` hint nowadays).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed batches each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.0));
    }

    /// Benchmarks `f` under `name`.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name));
    }

    /// Ends the group (printing happens per benchmark; nothing to flush).
    pub fn finish(self) {}
}

/// A benchmark identifier built from a parameter value.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id that is just the parameter's `Display` form.
    pub fn from_parameter(p: impl std::fmt::Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// An id with a function name and a parameter.
    pub fn new(name: impl std::fmt::Display, p: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

/// Runs and times the measured routine.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            samples_ns: Vec::new(),
        }
    }

    /// Times `routine`: one untimed warm-up call, then `sample_size` timed
    /// calls.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine());
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples_ns.push(start.elapsed().as_nanos() as f64);
        }
    }

    fn report(&self, label: &str) {
        if self.samples_ns.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let n = self.samples_ns.len() as f64;
        let mean = self.samples_ns.iter().sum::<f64>() / n;
        let min = self
            .samples_ns
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = self
            .samples_ns
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{label:<40} mean {:>12} min {:>12} max {:>12}  ({} samples)",
            fmt_ns(mean),
            fmt_ns(min),
            fmt_ns(max),
            self.samples_ns.len(),
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Bundles benchmark functions into one runner fn (real-crate-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the given groups (real-crate-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_sum(c: &mut Criterion) {
        let mut group = c.benchmark_group("sum");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter(100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.bench_function("fixed", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
    }

    criterion_group!(benches, bench_sum);

    #[test]
    fn harness_runs_and_collects_samples() {
        benches();
        let mut b = Bencher::new(4);
        b.iter(|| 40 + 2);
        assert_eq!(b.samples_ns.len(), 4);
    }
}
