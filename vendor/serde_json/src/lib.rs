//! Vendored stand-in for the subset of `serde_json` this workspace uses,
//! for fully offline builds (see DESIGN.md "Vendored dependency
//! stand-ins"): [`to_string`], [`to_string_pretty`], and [`from_str`] over
//! the owned `serde::Content` data model.
//!
//! Layout matches the real crate where the repo's tests can observe it:
//! pretty output indents by two spaces and separates keys with `": "`;
//! non-finite floats serialize as `null`.

use serde::{Content, Deserialize, Serialize};

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible for the supported data model; the `Result` mirrors the real
/// crate's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to pretty JSON (2-space indent, `": "` separators).
///
/// # Errors
///
/// Infallible for the supported data model; the `Result` mirrors the real
/// crate's signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some("  "), 0);
    Ok(out)
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    T::from_content(&content).map_err(|e| Error(e.to_string()))
}

fn write_content(c: &Content, out: &mut String, indent: Option<&str>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(*v, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(value, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_f64(v: f64, out: &mut String) {
    if !v.is_finite() {
        // JSON has no NaN/∞ literal; match the real crate's behavior.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        // Keep integral floats readable as `x.0`, like the real crate.
        out.push_str(&format!("{v:.1}"));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\n' || b == b'\t' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Content::Null),
            Some(b't') => self.literal("true", Content::Bool(true)),
            Some(b'f') => self.literal("false", Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.string()?)),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(&format!("unexpected character `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                core::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                core::str::from_utf8(hex)
                                    .map_err(|_| self.err("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by this repo's
                            // ASCII-ish configs; map them to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if fractional {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Content::I64)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|_| self.err("invalid number"))
        }
    }

    fn seq(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn map(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_layout() {
        let c = Content::Map(vec![
            ("label".to_string(), Content::Str("a".to_string())),
            (
                "xs".to_string(),
                Content::Seq(vec![Content::U64(1), Content::F64(2.5)]),
            ),
        ]);
        struct Raw(Content);
        impl Serialize for Raw {
            fn to_content(&self) -> Content {
                self.0.clone()
            }
        }
        let raw = Raw(c);
        assert_eq!(to_string(&raw).unwrap(), r#"{"label":"a","xs":[1,2.5]}"#);
        let pretty = to_string_pretty(&raw).unwrap();
        assert!(pretty.contains("\"label\": \"a\""), "{pretty}");
        assert!(
            pretty.contains("\n  \"xs\": [\n    1,\n    2.5\n  ]"),
            "{pretty}"
        );
    }

    #[test]
    fn parses_nested_values() {
        let c: Content = {
            let mut p = Parser {
                bytes: br#" {"a": [1, -2, 3.5, true, null], "b": {"s": "x\ny"}} "#,
                pos: 0,
            };
            p.skip_ws();
            p.value().unwrap()
        };
        let map = c.as_map().unwrap();
        assert_eq!(map[0].0, "a");
        match &map[0].1 {
            Content::Seq(items) => {
                assert_eq!(items[0], Content::U64(1));
                assert_eq!(items[1], Content::I64(-2));
                assert_eq!(items[2], Content::F64(3.5));
                assert_eq!(items[3], Content::Bool(true));
                assert_eq!(items[4], Content::Null);
            }
            other => panic!("expected seq, got {other:?}"),
        }
        let inner = map[1].1.as_map().unwrap();
        assert_eq!(inner[0].1, Content::Str("x\ny".to_string()));
    }

    #[test]
    fn nonfinite_floats_serialize_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<f64>("1.0 x").is_err());
    }
}
