//! Vendored stand-in for the subset of `serde` this workspace uses, for
//! fully offline builds (see DESIGN.md "Vendored dependency stand-ins").
//!
//! Instead of serde's visitor-based zero-copy data model, values round-trip
//! through an owned tree, [`Content`] — ample for the experiment configs
//! and result reports this repository serializes. The derive macros
//! (re-exported from `serde_derive`) implement [`Serialize`] /
//! [`Deserialize`] for plain structs with named fields and for enums with
//! unit or struct variants, in serde's externally-tagged JSON layout.

pub use serde_derive::{Deserialize, Serialize};

/// An owned, self-describing value tree — the data model every type
/// serializes into and deserializes from.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Content>),
    /// An ordered map (field order is preserved).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The float value, accepting any numeric representation.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::U64(v) => Some(v as f64),
            Content::I64(v) => Some(v as f64),
            Content::F64(v) => Some(v),
            // JSON has no NaN/∞ literal; non-finite floats serialize as
            // null, so null reads back as NaN rather than failing.
            Content::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The unsigned-integer value, accepting integral floats.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::U64(v) => Some(v),
            Content::I64(v) if v >= 0 => Some(v as u64),
            Content::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    /// The signed-integer value, accepting integral floats.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Content::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            Content::I64(v) => Some(v),
            Content::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            _ => None,
        }
    }
}

/// A deserialization error with a human-readable path/description.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// "expected X while deserializing Y" helper used by derived impls.
    pub fn expected(what: &str, ty: &str) -> Self {
        DeError(format!("expected {what} while deserializing {ty}"))
    }
}

impl core::fmt::Display for DeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Looks up a required field in a map's entries (derived impls call this).
///
/// # Errors
///
/// Returns [`DeError`] naming the missing field.
pub fn field<'a>(map: &'a [(String, Content)], name: &str) -> Result<&'a Content, DeError> {
    map.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{name}`")))
}

/// Types convertible into the [`Content`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Content`] tree.
    fn to_content(&self) -> Content;
}

/// Types reconstructible from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds a value from a [`Content`] tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] on shape or type mismatches.
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                c.as_f64()
                    .map(|v| v as $t)
                    .ok_or_else(|| DeError::expected("number", stringify!($t)))
            }
        }
    )*};
}
impl_float!(f64, f32);

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v = c
                    .as_u64()
                    .ok_or_else(|| DeError::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(v)
                    .map_err(|_| DeError(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_uint!(usize, u64, u32, u16, u8);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v = c
                    .as_i64()
                    .ok_or_else(|| DeError::expected("integer", stringify!($t)))?;
                <$t>::try_from(v)
                    .map_err(|_| DeError(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_int!(isize, i64, i32, i16, i8);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            _ => Err(DeError::expected("sequence", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) if items.len() == 2 => {
                Ok((A::from_content(&items[0])?, B::from_content(&items[1])?))
            }
            _ => Err(DeError::expected("2-element sequence", "tuple")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(f64::from_content(&3.5f64.to_content()).unwrap(), 3.5);
        assert_eq!(usize::from_content(&7usize.to_content()).unwrap(), 7);
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()).unwrap(),
            "hi"
        );
        let v = vec![1.0f64, 2.0];
        assert_eq!(Vec::<f64>::from_content(&v.to_content()).unwrap(), v);
    }

    #[test]
    fn numeric_cross_acceptance() {
        // u64 fields accept integral floats, f64 fields accept integers.
        assert_eq!(u64::from_content(&Content::F64(4.0)).unwrap(), 4);
        assert_eq!(f64::from_content(&Content::U64(4)).unwrap(), 4.0);
        assert!(u64::from_content(&Content::F64(4.5)).is_err());
    }

    #[test]
    fn nonfinite_floats_read_back_from_null() {
        assert!(f64::from_content(&Content::Null).unwrap().is_nan());
    }
}
