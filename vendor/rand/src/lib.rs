//! Vendored stand-in for the subset of the `rand` 0.8 API this workspace
//! uses, for fully offline builds (the real crate cannot be fetched in the
//! build environment; see DESIGN.md "Vendored dependency stand-ins").
//!
//! Provided surface: [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`]. The implementation
//! is **stream-compatible** with `rand` 0.8.5: `StdRng` is ChaCha12 with
//! the same PCG32-based `seed_from_u64` expansion, and the sampling
//! algorithms (widening-multiply integer ranges, `[1,2)`-mantissa float
//! ranges, most-significant-bit booleans) replicate the real crate's, so
//! seed-calibrated tests and experiments reproduce the values they were
//! calibrated against.

/// Low-level source of random words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits (two consecutive 32-bit words, low first —
    /// the same composition the real crate's block-based `StdRng` uses).
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from their "standard" distribution
/// (`rng.gen::<T>()`): `[0, 1)` for floats, full range for integers.
pub trait StandardSample {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits, multiply-based — same as the real crate.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl StandardSample for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Most-significant bit of a 32-bit draw, like the real crate.
        rng.next_u32() & (1 << 31) != 0
    }
}

/// Ranges a value can be drawn from uniformly (`rng.gen_range(range)`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn wmul64(a: u64, b: u64) -> (u64, u64) {
    let full = a as u128 * b as u128;
    ((full >> 64) as u64, full as u64)
}

fn wmul32(a: u32, b: u32) -> (u32, u32) {
    let full = a as u64 * b as u64;
    ((full >> 32) as u32, full as u32)
}

/// `sample_single_inclusive` over 64-bit draws, as in the real crate:
/// widening multiply with the conservative power-of-two zone.
fn sample_inclusive_u64<R: RngCore + ?Sized>(rng: &mut R, low: u64, high: u64) -> u64 {
    let range = high.wrapping_sub(low).wrapping_add(1);
    if range == 0 {
        return rng.next_u64(); // full span
    }
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let (hi, lo) = wmul64(v, range);
        if lo <= zone {
            return low.wrapping_add(hi);
        }
    }
}

/// `sample_single_inclusive` over 32-bit draws (u32 uses the conservative
/// zone; u16/u8 widen to u32 with the exact modulus zone, as upstream).
fn sample_inclusive_u32<R: RngCore + ?Sized>(
    rng: &mut R,
    low: u32,
    high: u32,
    modulus_zone: bool,
) -> u32 {
    let range = high.wrapping_sub(low).wrapping_add(1);
    if range == 0 {
        return rng.next_u32();
    }
    let zone = if modulus_zone {
        u32::MAX - (u32::MAX - range + 1) % range
    } else {
        (range << range.leading_zeros()).wrapping_sub(1)
    };
    loop {
        let v = rng.next_u32();
        let (hi, lo) = wmul32(v, range);
        if lo <= zone {
            return low.wrapping_add(hi);
        }
    }
}

macro_rules! int_ranges_64 {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                sample_inclusive_u64(rng, self.start as u64, (self.end - 1) as u64) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                sample_inclusive_u64(rng, lo as u64, hi as u64) as $t
            }
        }
    )*};
}
int_ranges_64!(usize, u64);

macro_rules! int_ranges_32 {
    ($($t:ty => $modulus:expr),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                sample_inclusive_u32(rng, self.start as u32, (self.end - 1) as u32, $modulus)
                    as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                sample_inclusive_u32(rng, lo as u32, hi as u32, $modulus) as $t
            }
        }
    )*};
}
int_ranges_32!(u32 => false, u16 => true, u8 => true);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let scale = self.end - self.start;
        loop {
            // Value in [1, 2) from 52 mantissa bits, like the real crate.
            let value1_2 = f64::from_bits((rng.next_u64() >> 12) | (1023u64 << 52));
            let res = (value1_2 - 1.0) * scale + self.start;
            if res < self.end {
                return res;
            }
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        let scale = hi - lo;
        if scale == 0.0 {
            return lo;
        }
        loop {
            let value1_2 = f64::from_bits((rng.next_u64() >> 12) | (1023u64 << 52));
            let res = (value1_2 - 1.0) * scale + lo;
            if res <= hi {
                return res;
            }
        }
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let scale = self.end - self.start;
        loop {
            let value1_2 = f32::from_bits((rng.next_u32() >> 9) | (127u32 << 23));
            let res = (value1_2 - 1.0) * scale + self.start;
            if res < self.end {
                return res;
            }
        }
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p` (real-crate `Bernoulli` scaling).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            // Consume a draw anyway, as the real crate's Bernoulli does
            // via its always-true integer threshold.
            let _ = self.next_u64();
            return true;
        }
        let p_int = (p * (u64::MAX as f64 + 1.0)) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (PCG32 expansion, matching
    /// the real crate's default `seed_from_u64`).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    const CHACHA_ROUNDS: usize = 12; // StdRng in rand 0.8 is ChaCha12
    const BLOCK_WORDS: usize = 16;

    /// The workspace's standard deterministic generator: ChaCha12,
    /// stream-compatible with `rand` 0.8's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        key: [u32; 8],
        counter: u64,
        buf: [u32; BLOCK_WORDS],
        index: usize,
    }

    fn quarter_round(s: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    fn chacha_block(key: &[u32; 8], counter: u64) -> [u32; BLOCK_WORDS] {
        let mut s: [u32; BLOCK_WORDS] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            key[0],
            key[1],
            key[2],
            key[3],
            key[4],
            key[5],
            key[6],
            key[7],
            counter as u32,
            (counter >> 32) as u32,
            0, // stream id low
            0, // stream id high
        ];
        let initial = s;
        for _ in 0..CHACHA_ROUNDS / 2 {
            quarter_round(&mut s, 0, 4, 8, 12);
            quarter_round(&mut s, 1, 5, 9, 13);
            quarter_round(&mut s, 2, 6, 10, 14);
            quarter_round(&mut s, 3, 7, 11, 15);
            quarter_round(&mut s, 0, 5, 10, 15);
            quarter_round(&mut s, 1, 6, 11, 12);
            quarter_round(&mut s, 2, 7, 8, 13);
            quarter_round(&mut s, 3, 4, 9, 14);
        }
        for (w, i) in s.iter_mut().zip(initial) {
            *w = w.wrapping_add(i);
        }
        s
    }

    impl StdRng {
        /// Builds the generator from a 32-byte key, like `from_seed`.
        pub fn from_seed(seed: [u8; 32]) -> Self {
            let mut key = [0u32; 8];
            for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                *k = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
            }
            StdRng {
                key,
                counter: 0,
                buf: [0; BLOCK_WORDS],
                index: BLOCK_WORDS,
            }
        }

        fn next_word(&mut self) -> u32 {
            if self.index >= BLOCK_WORDS {
                self.buf = chacha_block(&self.key, self.counter);
                self.counter = self.counter.wrapping_add(1);
                self.index = 0;
            }
            let w = self.buf[self.index];
            self.index += 1;
            w
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            // PCG32 expansion of the 64-bit seed into the 32-byte key,
            // matching the real crate's default implementation.
            const MUL: u64 = 6_364_136_223_846_793_005;
            const INC: u64 = 11_634_580_027_462_260_723;
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_exact_mut(4) {
                state = state.wrapping_mul(MUL).wrapping_add(INC);
                let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
                let rot = (state >> 59) as u32;
                chunk.copy_from_slice(&xorshifted.rotate_right(rot).to_le_bytes());
            }
            StdRng::from_seed(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            self.next_word()
        }

        fn next_u64(&mut self) -> u64 {
            // Two consecutive words, low half first — the word stream is
            // continuous across block boundaries, exactly like the real
            // crate's block-buffered reader.
            let lo = self.next_word() as u64;
            let hi = self.next_word() as u64;
            lo | (hi << 32)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let mut differs = false;
        for _ in 0..100 {
            let (x, y, z) = (a.gen::<u64>(), b.gen::<u64>(), c.gen::<u64>());
            assert_eq!(x, y);
            differs |= x != z;
        }
        assert!(differs, "different seeds should give different streams");
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0..5usize)] = true;
            let f = rng.gen_range(2.0..=3.0f64);
            assert!((2.0..=3.0).contains(&f));
            let k = rng.gen_range(1..=4u32);
            assert!((1..=4).contains(&k));
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn mean_is_about_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn chacha_stream_is_word_continuous() {
        // next_u64 must equal two next_u32 calls (low word first).
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..40 {
            let x = a.gen::<u64>();
            let lo = b.gen::<u32>() as u64;
            let hi = b.gen::<u32>() as u64;
            assert_eq!(x, lo | (hi << 32));
        }
    }
}
