//! Vendored stand-in for `serde_derive`, for fully offline builds.
//!
//! Parses the item token stream directly (no `syn`/`quote` available) and
//! emits `serde::Serialize` / `serde::Deserialize` impls over the owned
//! `serde::Content` data model. Supported shapes — exactly what this
//! workspace derives on:
//!
//! - structs with named fields,
//! - enums whose variants are unit or struct-like (externally tagged:
//!   `"Variant"` for unit, `{"Variant": {fields…}}` for struct variants),
//! - the `#[serde(default)]` field attribute: a field absent from the
//!   serialized map deserializes to `Default::default()` (the schema-
//!   evolution escape hatch for records written before a field existed).
//!
//! Tuple structs, tuple variants, generic types, and any other `#[serde]`
//! attribute produce a `compile_error!` naming the unsupported shape.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A named field and whether `#[serde(default)]` makes it optional on
/// deserialization.
type Field = (String, bool);

/// A variant's fields: `None` for a unit variant, `Some(fields)` for a
/// struct-like variant.
type Variant = (String, Option<Vec<Field>>);

enum Shape {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => gen(&item),
        Err(msg) => format!("::core::compile_error!({msg:?});"),
    };
    code.parse()
        .expect("derive stand-in generated invalid Rust")
}

type PeekIter = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Consumes leading `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(iter: &mut PeekIter) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the bracketed attribute body
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);

    let keyword = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };

    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err(format!(
                    "serde stand-in derive does not support generic type `{name}`"
                ));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Err(format!(
                    "serde stand-in derive does not support unit or tuple struct `{name}`"
                ));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "serde stand-in derive does not support tuple struct `{name}`"
                ));
            }
            Some(_) => continue,
            None => return Err(format!("missing body for `{name}`")),
        }
    };

    let shape = match keyword.as_str() {
        "struct" => Shape::Struct(parse_fields(body.stream(), &name)?),
        "enum" => Shape::Enum(parse_variants(body.stream(), &name)?),
        other => return Err(format!("cannot derive for `{other}` item `{name}`")),
    };
    Ok(Item { name, shape })
}

/// Consumes a field's leading attributes and visibility like
/// [`skip_attrs_and_vis`], but inspects `#[serde(...)]` attributes:
/// returns whether `#[serde(default)]` was present, and errors on any
/// other `serde` attribute (silently ignoring `rename`, `skip`, … would
/// change the wire format behind the caller's back).
fn take_field_attrs(iter: &mut PeekIter, ctx: &str) -> Result<bool, String> {
    let mut has_default = false;
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.next() {
                    has_default |= serde_default_attr(g.stream(), ctx)?;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            _ => return Ok(has_default),
        }
    }
}

/// Whether a `#[...]` attribute body is `serde(default)`. Non-`serde`
/// attributes answer `false`; a `serde(...)` attribute with any content
/// other than `default` is an error.
fn serde_default_attr(stream: TokenStream, ctx: &str) -> Result<bool, String> {
    let mut iter = stream.into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return Ok(false),
    }
    let args = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return Ok(false),
    };
    let mut has_default = false;
    for t in args {
        match &t {
            TokenTree::Ident(id) if id.to_string() == "default" => has_default = true,
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            other => {
                return Err(format!(
                    "serde stand-in derive supports only `#[serde(default)]`, \
                     found `{other}` in `{ctx}`"
                ))
            }
        }
    }
    Ok(has_default)
}

/// Parses `name: Type, ...` out of a brace-group body, skipping the type
/// tokens (angle-bracket depth tracked so `Vec<(A, B)>` commas don't split).
fn parse_fields(stream: TokenStream, ctx: &str) -> Result<Vec<Field>, String> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let has_default = take_field_attrs(&mut iter, ctx)?;
        let field = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected field name in `{ctx}`, found {other}")),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{ctx}.{field}`, found {other:?}"
                ))
            }
        }
        fields.push((field, has_default));
        let mut depth = 0i32;
        loop {
            match iter.next() {
                None => break,
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream, ctx: &str) -> Result<Vec<Variant>, String> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        let variant = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected variant name in `{ctx}`, found {other}")),
        };
        match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_fields(g.stream(), &format!("{ctx}::{variant}"))?;
                iter.next();
                if let Some(TokenTree::Punct(p)) = iter.peek() {
                    if p.as_char() == ',' {
                        iter.next();
                    }
                }
                variants.push((variant, Some(fields)));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "serde stand-in derive does not support tuple variant `{ctx}::{variant}`"
                ));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                iter.next();
                variants.push((variant, None));
            }
            None => variants.push((variant, None)),
            Some(other) => {
                return Err(format!(
                    "unsupported token after variant `{ctx}::{variant}`: {other}"
                ))
            }
        }
    }
    Ok(variants)
}

/// `("field".to_string(), serde::Serialize::to_content(<expr>))` entries.
fn map_entries(fields: &[Field], expr_of: impl Fn(&str) -> String) -> String {
    fields
        .iter()
        .map(|(f, _)| {
            format!(
                "(::std::string::String::from({f:?}), serde::Serialize::to_content({})),",
                expr_of(f)
            )
        })
        .collect()
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let entries = map_entries(fields, |f| format!("&self.{f}"));
            format!("serde::Content::Map(::std::vec![{entries}])")
        }
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|(variant, fields)| match fields {
                    None => format!(
                        "{name}::{variant} => \
                         serde::Content::Str(::std::string::String::from({variant:?})),"
                    ),
                    Some(fields) => {
                        let pat = fields
                            .iter()
                            .map(|(f, _)| f.as_str())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let entries = map_entries(fields, |f| f.to_string());
                        format!(
                            "{name}::{variant} {{ {pat} }} => serde::Content::Map(::std::vec![(\
                               ::std::string::String::from({variant:?}),\
                               serde::Content::Map(::std::vec![{entries}]),\
                             )]),"
                        )
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\
           fn to_content(&self) -> serde::Content {{ {body} }}\
         }}"
    )
}

/// `field: serde::Deserialize::from_content(serde::field(m, "field")?)?,`
/// — or, for `#[serde(default)]` fields, a match that falls back to
/// `Default::default()` when the field is missing from the map.
fn field_inits(fields: &[Field]) -> String {
    fields
        .iter()
        .map(|(f, has_default)| {
            if *has_default {
                format!(
                    "{f}: match serde::field(m, {f:?}) {{\
                       ::std::result::Result::Ok(v) => serde::Deserialize::from_content(v)?,\
                       ::std::result::Result::Err(_) => ::std::default::Default::default(),\
                     }},"
                )
            } else {
                format!("{f}: serde::Deserialize::from_content(serde::field(m, {f:?})?)?,")
            }
        })
        .collect()
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let inits = field_inits(fields);
            format!(
                "let m = c.as_map().ok_or_else(|| serde::DeError::expected(\"map\", {name:?}))?;\
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, fields)| fields.is_none())
                .map(|(variant, _)| {
                    format!("{variant:?} => ::std::result::Result::Ok({name}::{variant}),")
                })
                .collect();
            let struct_arms: String = variants
                .iter()
                .filter_map(|(variant, fields)| fields.as_ref().map(|f| (variant, f)))
                .map(|(variant, fields)| {
                    let ctx = format!("{name}::{variant}");
                    let inits = field_inits(fields);
                    format!(
                        "{variant:?} => {{\
                           let m = inner.as_map()\
                               .ok_or_else(|| serde::DeError::expected(\"map\", {ctx:?}))?;\
                           ::std::result::Result::Ok({name}::{variant} {{ {inits} }})\
                         }},"
                    )
                })
                .collect();
            format!(
                "match c {{\
                   serde::Content::Str(tag) => match tag.as_str() {{\
                     {unit_arms}\
                     _ => ::std::result::Result::Err(serde::DeError(::std::format!(\
                       \"unknown unit variant `{{tag}}` of {name}\"))),\
                   }},\
                   serde::Content::Map(entries) if entries.len() == 1 => {{\
                     let (tag, inner) = &entries[0];\
                     match tag.as_str() {{\
                       {struct_arms}\
                       _ => ::std::result::Result::Err(serde::DeError(::std::format!(\
                         \"unknown variant `{{tag}}` of {name}\"))),\
                     }}\
                   }},\
                   _ => ::std::result::Result::Err(serde::DeError::expected(\
                     \"variant string or single-entry map\", {name:?})),\
                 }}"
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\
           fn from_content(c: &serde::Content) \
               -> ::std::result::Result<Self, serde::DeError> {{ {body} }}\
         }}"
    )
}
