//! Adversarial lower-bound exploration (the paper's stated future work):
//! the ping-pong family on which online-greedy's competitive ratio
//! approaches 2 while the regularized algorithm stays better behaved.

use edgealloc::cost::evaluate_trajectory;
use edgealloc::prelude::*;

fn ratios(k: f64, slots: usize) -> (f64, f64) {
    let inst = Instance::pingpong(slots, k);
    let offline = solve_offline(&inst).unwrap();
    let greedy = run_online(&inst, &mut OnlineGreedy::new()).unwrap();
    let approx = run_online(&inst, &mut OnlineRegularized::with_defaults()).unwrap();
    let off = offline.cost.total();
    (
        evaluate_trajectory(&inst, &greedy.allocations).total() / off,
        evaluate_trajectory(&inst, &approx.allocations).total() / off,
    )
}

#[test]
fn greedy_thrashes_on_pingpong() {
    // Greedy relocates the workload every slot (the delay `k+0.1` always
    // beats the move cost `k`).
    let inst = Instance::pingpong(8, 4.0);
    let traj = run_online(&inst, &mut OnlineGreedy::new()).unwrap();
    for t in 0..8 {
        let here = t % 2;
        assert!(
            traj.allocations[t].get(here, 0) > 0.99,
            "slot {t}: greedy should follow the user"
        );
    }
}

#[test]
fn greedy_ratio_grows_with_k() {
    let (g1, _) = ratios(1.0, 12);
    let (g4, _) = ratios(4.0, 12);
    let (g16, _) = ratios(16.0, 12);
    assert!(
        g1 < g4 && g4 < g16,
        "greedy ratios {g1} {g4} {g16} must grow"
    );
    assert!(g16 > 1.5, "greedy should approach 2, got {g16}");
    assert!(g16 < 2.0 + 1e-9, "ping-pong bounds greedy by 2");
}

#[test]
fn approx_beats_greedy_on_hard_pingpong() {
    let (g, a) = ratios(16.0, 12);
    assert!(
        a < g,
        "regularized ({a}) should beat greedy ({g}) on the adversarial family"
    );
}

#[test]
fn offline_parks_the_workload() {
    // The optimum never pays the oscillation: at most one early move (from
    // the slot-0 cloud to the one the user visits at odd slots saves one
    // delay payment), then the workload stays parked.
    let inst = Instance::pingpong(10, 8.0);
    let offline = solve_offline(&inst).unwrap();
    let moved: f64 = offline
        .allocations
        .windows(2)
        .map(|w| {
            (0..2)
                .map(|i| (w[1].cloud_total(i) - w[0].cloud_total(i)).abs())
                .sum::<f64>()
        })
        .sum();
    // One full relocation registers as 2.0 in this metric (1 out + 1 in).
    assert!(
        moved <= 2.0 + 1e-6,
        "offline should move at most once, total movement {moved}"
    );
    // Greedy, by contrast, moves every slot: 2·(T−1) = 18.
    let greedy = run_online(&inst, &mut OnlineGreedy::new()).unwrap();
    let greedy_moved: f64 = greedy
        .allocations
        .windows(2)
        .map(|w| {
            (0..2)
                .map(|i| (w[1].cloud_total(i) - w[0].cloud_total(i)).abs())
                .sum::<f64>()
        })
        .sum();
    assert!(
        greedy_moved > 17.0,
        "greedy moves every slot: {greedy_moved}"
    );
}
