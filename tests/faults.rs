//! Fault-injection suite: every fault class must be survived — the full
//! horizon decided, finite reported costs, and the damage flagged in the
//! health records rather than surfacing as a panic or an error.

use sim::faults::{FaultKind, FaultPlan};
use sim::runner::run_scenario;
use sim::scenario::{AlgorithmKind, MobilityKind, Scenario};

const SLOTS: usize = 6;

fn scenario(name: &str, faults: Vec<FaultKind>) -> Scenario {
    Scenario {
        name: name.into(),
        mobility: MobilityKind::RandomWalk { num_users: 5 },
        num_slots: SLOTS,
        algorithms: vec![
            AlgorithmKind::Approx { eps: 0.5 },
            AlgorithmKind::Greedy,
            AlgorithmKind::StatOpt,
            AlgorithmKind::StaticProportional,
        ],
        repetitions: 2,
        seed: 23,
        faults: FaultPlan { faults },
        ..Scenario::default()
    }
}

/// The scenario must survive: full horizons, finite totals, and (when
/// `expect_flagged`) at least one slot marked degraded for at least one
/// algorithm.
fn assert_survives(scenario: &Scenario, expect_flagged: bool) {
    let outcome = run_scenario(scenario).unwrap_or_else(|e| {
        panic!("{}: scenario did not survive: {e}", scenario.name);
    });
    assert!(
        outcome.failures.iter().all(|f| !f.fatal),
        "{}: fatal repetition failures: {:?}",
        scenario.name,
        outcome.failures
    );
    let mut any_degraded = false;
    for alg in &outcome.algorithms {
        assert_eq!(
            alg.totals.len(),
            scenario.repetitions,
            "{}: {} lost repetitions",
            scenario.name,
            alg.name
        );
        for &t in &alg.totals {
            assert!(
                t.is_finite() && t >= 0.0,
                "{}: {} produced cost {t}",
                scenario.name,
                alg.name
            );
        }
        let merged = alg.merged_health();
        assert_eq!(
            merged.slots,
            scenario.repetitions * SLOTS,
            "{}: {} did not decide every slot",
            scenario.name,
            alg.name
        );
        any_degraded |= merged.degraded_slots > 0;
    }
    if expect_flagged {
        assert!(
            any_degraded,
            "{}: faults injected but no slot flagged degraded",
            scenario.name
        );
    }
}

#[test]
fn survives_nan_price() {
    assert_survives(
        &scenario("nan-price", vec![FaultKind::PriceNan { slot: 2, cloud: 1 }]),
        true,
    );
}

#[test]
fn survives_negative_price_spike() {
    assert_survives(
        &scenario(
            "negative-spike",
            vec![FaultKind::PriceSpike {
                slot: 1,
                cloud: 0,
                value: -50.0,
            }],
        ),
        true,
    );
}

#[test]
fn survives_infinite_price_spike() {
    assert_survives(
        &scenario(
            "infinite-spike",
            vec![FaultKind::PriceSpike {
                slot: 3,
                cloud: 2,
                value: f64::INFINITY,
            }],
        ),
        true,
    );
}

#[test]
fn survives_zero_capacity_cloud() {
    // A cloud going dark is a legitimate state (not sanitized away): the
    // remaining clouds absorb its share. The run must stay finite; whether
    // any slot degrades depends on how tight the remaining capacity is.
    assert_survives(
        &scenario("dark-cloud", vec![FaultKind::ZeroCapacity { cloud: 0 }]),
        false,
    );
}

#[test]
fn survives_demand_surge_beyond_capacity() {
    // Utilization is 80%, so a 10× surge is far beyond total capacity: the
    // offline normalizer is infeasible (NaN, noted as a non-fatal failure)
    // but every online algorithm still yields a full, finite trajectory.
    let s = scenario(
        "demand-surge",
        vec![FaultKind::DemandSurge { factor: 10.0 }],
    );
    let outcome = run_scenario(&s).unwrap();
    assert!(outcome.failures.iter().all(|f| !f.fatal));
    assert!(
        outcome
            .failures
            .iter()
            .any(|f| f.message.contains("offline solve failed")),
        "expected the infeasible normalizer to be noted: {:?}",
        outcome.failures
    );
    for alg in &outcome.algorithms {
        for &t in &alg.totals {
            assert!(t.is_finite(), "{}: cost {t}", alg.name);
        }
    }
}

#[test]
fn survives_degenerate_delay_matrix() {
    assert_survives(
        &scenario("degenerate-delays", vec![FaultKind::DegenerateDelays]),
        true,
    );
}

#[test]
fn survives_compound_faults() {
    assert_survives(
        &scenario(
            "compound",
            vec![
                FaultKind::PriceNan { slot: 1, cloud: 0 },
                FaultKind::PriceSpike {
                    slot: 4,
                    cloud: 1,
                    value: f64::NEG_INFINITY,
                },
                FaultKind::ZeroCapacity { cloud: 2 },
            ],
        ),
        true,
    );
}

#[test]
fn faulted_outcome_serializes_with_health() {
    let s = scenario(
        "serialized",
        vec![FaultKind::PriceNan { slot: 2, cloud: 1 }],
    );
    let outcome = run_scenario(&s).unwrap();
    let json = sim::report::outcome_json(&outcome);
    assert!(json.contains("\"health\""));
    assert!(json.contains("\"failures\""));
    assert!(json.contains("sanitized_slots"));
}
