//! Integration test reproducing Figure 1 of the paper end-to-end: the toy
//! instances, the greedy pathologies, the exact cost tallies, and the
//! regularized algorithm landing between greedy and the optimum.

use edgealloc::allocation::Allocation;
use edgealloc::cost::{evaluate_trajectory, transition_cost};
use edgealloc::prelude::*;

/// The paper's tallies exclude the initial ramp-up transition (identical
/// for every policy).
fn cost_without_ramp(inst: &Instance, allocs: &[Allocation]) -> f64 {
    let full = evaluate_trajectory(inst, allocs).total();
    let ramp = transition_cost(
        inst,
        &Allocation::zeros(inst.num_clouds(), inst.num_users()),
        &allocs[0],
    )
    .total();
    full - ramp
}

#[test]
fn figure_1a_exact_costs() {
    let inst = Instance::fig1_example(2.1, true);
    let greedy = run_online(&inst, &mut OnlineGreedy::new()).unwrap();
    let offline = solve_offline(&inst).unwrap();
    assert!((cost_without_ramp(&inst, &greedy.allocations) - 11.5).abs() < 1e-4);
    assert!((cost_without_ramp(&inst, &offline.allocations) - 9.6).abs() < 1e-4);
}

#[test]
fn figure_1b_exact_costs() {
    let inst = Instance::fig1_example(1.9, false);
    let greedy = run_online(&inst, &mut OnlineGreedy::new()).unwrap();
    let offline = solve_offline(&inst).unwrap();
    assert!((cost_without_ramp(&inst, &greedy.allocations) - 11.3).abs() < 1e-4);
    // True optimum 9.4 (the paper's narrative policy costs 9.5; DESIGN.md).
    assert!((cost_without_ramp(&inst, &offline.allocations) - 9.4).abs() < 1e-4);
}

#[test]
fn regularized_beats_greedy_on_both_toy_cases() {
    for (dab, ret) in [(2.1, true), (1.9, false)] {
        let inst = Instance::fig1_example(dab, ret);
        let greedy = run_online(&inst, &mut OnlineGreedy::new()).unwrap();
        let approx = run_online(&inst, &mut OnlineRegularized::with_defaults()).unwrap();
        let g = evaluate_trajectory(&inst, &greedy.allocations).total();
        let a = evaluate_trajectory(&inst, &approx.allocations).total();
        assert!(a < g, "case ({dab},{ret}): approx {a} !< greedy {g}");
    }
}

#[test]
fn greedy_is_aggressive_in_case_a_and_conservative_in_case_b() {
    // Case (a): greedy chases the user (A→B→A).
    let inst = Instance::fig1_example(2.1, true);
    let traj = run_online(&inst, &mut OnlineGreedy::new()).unwrap();
    assert!(traj.allocations[1].get(1, 0) > 0.99);
    assert!(traj.allocations[2].get(0, 0) > 0.99);
    // Case (b): greedy never moves.
    let inst = Instance::fig1_example(1.9, false);
    let traj = run_online(&inst, &mut OnlineGreedy::new()).unwrap();
    for t in 0..3 {
        assert!(traj.allocations[t].get(0, 0) > 0.99, "slot {t}");
    }
}

#[test]
fn all_policies_feasible_on_toy_cases() {
    for (dab, ret) in [(2.1, true), (1.9, false)] {
        let inst = Instance::fig1_example(dab, ret);
        let algs: Vec<Box<dyn OnlineAlgorithm>> = vec![
            Box::new(OnlineGreedy::new()),
            Box::new(OnlineRegularized::with_defaults()),
            Box::new(PerfOpt::new()),
            Box::new(OperOpt::new()),
            Box::new(StatOpt::new()),
        ];
        for mut alg in algs {
            let traj = run_online(&inst, alg.as_mut()).unwrap();
            for x in &traj.allocations {
                assert!(
                    x.demand_shortfall(inst.workloads()) < 1e-5,
                    "{}",
                    alg.name()
                );
                assert!(
                    x.capacity_excess(inst.system().capacities()) < 1e-5,
                    "{}",
                    alg.name()
                );
            }
        }
    }
}
