//! End-to-end experiment-harness tests: small versions of the paper's
//! evaluation scenarios, checking the qualitative shape of the results
//! (who wins, and by roughly how much).

use sim::scenario::{AlgorithmKind, MobilityKind, Scenario};

fn run(scenario: Scenario) -> sim::ScenarioOutcome {
    sim::run_scenario(&scenario).expect("scenario must run")
}

#[test]
fn taxi_scenario_orders_algorithms_as_the_paper_does() {
    // Figure 2's qualitative shape: the holistic group (greedy, approx)
    // clearly beats the atomistic stat-opt, and online-approx is within a
    // small margin of (typically below) online-greedy. At this test's tiny
    // scale the ramp-up phase weighs on approx, so we assert a margin
    // rather than strict dominance; see EXPERIMENTS.md for the full-scale
    // measurements.
    let outcome = run(Scenario {
        name: "e2e-taxi".into(),
        mobility: MobilityKind::Taxi { num_users: 14 },
        num_slots: 14,
        algorithms: vec![
            AlgorithmKind::StatOpt,
            AlgorithmKind::Greedy,
            AlgorithmKind::Approx { eps: 0.5 },
        ],
        repetitions: 2,
        seed: 31,
        ..Scenario::default()
    });
    let stat = outcome.algorithms[0].mean_ratio();
    let greedy = outcome.algorithms[1].mean_ratio();
    let approx = outcome.algorithms[2].mean_ratio();
    assert!(
        approx <= greedy * 1.08,
        "approx {approx} should be within 8% of greedy {greedy}"
    );
    assert!(approx < stat, "approx {approx} should beat stat-opt {stat}");
    assert!(approx < 1.5, "approx ratio {approx} should be near-optimal");
}

#[test]
fn random_walk_scenario_keeps_approx_near_optimal() {
    // Figure 5's shape: approx stays close to 1 under random-walk mobility.
    let outcome = run(Scenario {
        name: "e2e-walk".into(),
        mobility: MobilityKind::RandomWalk { num_users: 15 },
        num_slots: 8,
        algorithms: vec![AlgorithmKind::Greedy, AlgorithmKind::Approx { eps: 0.5 }],
        repetitions: 2,
        seed: 5,
        ..Scenario::default()
    });
    let greedy = outcome.algorithms[0].mean_ratio();
    let approx = outcome.algorithms[1].mean_ratio();
    assert!(approx >= 1.0 - 1e-6);
    // Under every-slot random-walk mobility the regularizer's partial moves
    // churn more than the paper reports (see EXPERIMENTS.md, Figure 5):
    // both holistic algorithms stay below 1.6 here.
    assert!(approx < 1.6, "approx {approx}");
    assert!(greedy < 1.6, "greedy {greedy}");
}

#[test]
fn static_baselines_cost_a_multiple_of_online() {
    // §I's claim shape: static approaches cost a real multiple of the
    // adaptive online algorithm under mobility.
    let outcome = run(Scenario {
        name: "e2e-static".into(),
        mobility: MobilityKind::Taxi { num_users: 12 },
        num_slots: 10,
        algorithms: vec![
            AlgorithmKind::Approx { eps: 0.5 },
            AlgorithmKind::StaticProportional,
        ],
        repetitions: 2,
        seed: 77,
        ..Scenario::default()
    });
    let approx = outcome.algorithms[0].mean_ratio();
    let static_prop = outcome.algorithms[1].mean_ratio();
    assert!(
        static_prop > 1.2 * approx,
        "static-proportional {static_prop} should cost well above approx {approx}"
    );
}

#[test]
fn epsilon_extremes_still_produce_valid_runs() {
    // Figure 4's sweep endpoints must run without numerical failure.
    for eps in [1e-3, 1e3] {
        let outcome = run(Scenario {
            name: format!("e2e-eps-{eps}"),
            mobility: MobilityKind::RandomWalk { num_users: 6 },
            num_slots: 5,
            algorithms: vec![AlgorithmKind::Approx { eps }],
            repetitions: 1,
            seed: 13,
            ..Scenario::default()
        });
        assert!(outcome.algorithms[0].mean_ratio() >= 1.0 - 1e-4);
    }
}

#[test]
fn mu_extremes_match_figure4_shape() {
    // Small μ (static dominates): per-slot optimization is near-optimal, so
    // the ratio should be very close to 1. Large μ: still bounded.
    let base = Scenario {
        name: "e2e-mu".into(),
        mobility: MobilityKind::RandomWalk { num_users: 6 },
        num_slots: 6,
        algorithms: vec![AlgorithmKind::Approx { eps: 0.5 }],
        repetitions: 2,
        seed: 3,
        ..Scenario::default()
    };
    let small = run(Scenario {
        dynamic_weight: 1e-3,
        name: "e2e-mu-small".into(),
        ..base.clone()
    });
    let large = run(Scenario {
        dynamic_weight: 1e3,
        name: "e2e-mu-large".into(),
        ..base
    });
    let r_small = small.algorithms[0].mean_ratio();
    let r_large = large.algorithms[0].mean_ratio();
    assert!(r_small < 1.1, "small-μ ratio {r_small} should be ≈1");
    assert!(r_large < 3.0, "large-μ ratio {r_large} should stay bounded");
}
