//! Parametrized near-infeasible stress tests: as demand approaches (and
//! crosses) total capacity, the regularized program loses its strict
//! interior and the barrier gets progressively harder to center. The
//! pipeline must keep producing full, finite trajectories all the way —
//! degrading through the ladder instead of erroring out.

use sim::faults::{FaultKind, FaultPlan};
use sim::runner::run_scenario;
use sim::scenario::{AlgorithmKind, MobilityKind, Scenario};

const SLOTS: usize = 5;
const REPS: usize = 2;

fn tight_scenario(name: &str, utilization: f64, surge: f64) -> Scenario {
    let faults = if surge == 1.0 {
        FaultPlan::none()
    } else {
        FaultPlan {
            faults: vec![FaultKind::DemandSurge { factor: surge }],
        }
    };
    Scenario {
        name: name.into(),
        mobility: MobilityKind::RandomWalk { num_users: 5 },
        num_slots: SLOTS,
        algorithms: vec![AlgorithmKind::Approx { eps: 0.5 }, AlgorithmKind::Greedy],
        repetitions: REPS,
        seed: 31,
        utilization,
        faults,
        ..Scenario::default()
    }
}

fn assert_full_finite(scenario: &Scenario) {
    let outcome = run_scenario(scenario)
        .unwrap_or_else(|e| panic!("{}: did not survive: {e}", scenario.name));
    assert!(
        outcome.failures.iter().all(|f| !f.fatal),
        "{}: fatal failures {:?}",
        scenario.name,
        outcome.failures
    );
    for alg in &outcome.algorithms {
        assert_eq!(alg.totals.len(), REPS, "{}: {}", scenario.name, alg.name);
        for &t in &alg.totals {
            assert!(
                t.is_finite() && t > 0.0,
                "{}: {} cost {t}",
                scenario.name,
                alg.name
            );
        }
        assert_eq!(
            alg.merged_health().slots,
            REPS * SLOTS,
            "{}: {} missed slots",
            scenario.name,
            alg.name
        );
    }
}

#[test]
fn utilization_sweep_toward_saturation() {
    // The paper's experiments run at 80% utilization; push toward 100%.
    for utilization in [0.9, 0.95, 0.99] {
        let name = format!("util-{utilization}");
        assert_full_finite(&tight_scenario(&name, utilization, 1.0));
    }
}

#[test]
fn demand_at_the_feasibility_boundary() {
    // A surge that lands demand almost exactly on total capacity: the
    // strict interior all the solvers rely on nearly vanishes.
    for surge in [1.15, 1.2, 1.25] {
        let name = format!("boundary-{surge}");
        assert_full_finite(&tight_scenario(&name, 0.8, surge));
    }
}

#[test]
fn demand_beyond_capacity_still_reports() {
    // Past the boundary the instance is structurally infeasible: the
    // offline normalizer fails (non-fatally) but online trajectories and
    // their costs must still come back finite, with the stress visible in
    // the health records.
    for surge in [1.3, 1.5, 2.0] {
        let name = format!("overload-{surge}");
        let scenario = tight_scenario(&name, 0.9, surge);
        let outcome =
            run_scenario(&scenario).unwrap_or_else(|e| panic!("{name}: did not survive: {e}"));
        assert!(outcome.failures.iter().all(|f| !f.fatal), "{name}");
        for alg in &outcome.algorithms {
            for &t in &alg.totals {
                assert!(t.is_finite(), "{name}: {} cost {t}", alg.name);
            }
            assert_eq!(alg.merged_health().slots, REPS * SLOTS, "{name}");
        }
    }
}
