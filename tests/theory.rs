//! The paper's theory, executed: Lemma 1 (gap-preserving transformation),
//! Theorem 1 (feasibility), Lemma 2 (dual feasibility of S_D), the weak-
//! duality chain `D ≤ P₃ ≤ P₁`, and Theorem 2 (the competitive ratio bound)
//! are all checked numerically on randomized instances.

use edgealloc::algorithms::SlotInput;
use edgealloc::allocation::Allocation;
use edgealloc::cost::evaluate_trajectory;
use edgealloc::prelude::*;
use edgealloc::programs::dual;
use edgealloc::programs::p2::{self, Epsilons, P2Solution};
use edgealloc::transform::{p1_objective, sigma};
use optim::convex::BarrierOptions;
use rand::SeedableRng;

fn random_instance(seed: u64, users: usize, slots: usize) -> Instance {
    let net = mobility::rome_metro();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mob = mobility::random_walk::generate(&net, users, slots, &mut rng);
    Instance::synthetic(&net, mob, &mut rng)
}

/// An instance with comfortable capacity headroom (50% utilization). The
/// paper's Theorem-1 argument is sound in this regime; at tight capacities
/// the ℙ₂ optimum can exceed capacity (erratum in DESIGN.md) and the
/// algorithm's repair projection takes over.
fn roomy_instance(seed: u64, users: usize, slots: usize) -> Instance {
    use edgealloc::instance::SyntheticConfig;
    let net = mobility::rome_metro();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mob = mobility::random_walk::generate(&net, users, slots, &mut rng);
    let cfg = SyntheticConfig {
        utilization: 0.4,
        ..SyntheticConfig::default()
    };
    Instance::synthetic_with(&net, mob, &cfg, &mut rng).unwrap()
}

fn solve_p2_horizon(inst: &Instance, eps: Epsilons) -> Vec<P2Solution> {
    let mut prev = Allocation::zeros(inst.num_clouds(), inst.num_users());
    let mut out = Vec::new();
    for t in 0..inst.num_slots() {
        let input = SlotInput::from_instance(inst, t);
        let sol = p2::solve(&input, &prev, eps, None, &BarrierOptions::default()).unwrap();
        prev = sol.allocation.clone();
        out.push(sol);
    }
    out
}

#[test]
fn lemma1_p1_bounded_by_p0_plus_sigma() {
    for seed in [1, 2, 3] {
        let inst = random_instance(seed, 6, 6);
        let traj = run_online(&inst, &mut OnlineRegularized::with_defaults()).unwrap();
        let p0 = evaluate_trajectory(&inst, &traj.allocations).total();
        let p1 = p1_objective(&inst, &traj.allocations);
        assert!(
            p1 <= p0 + sigma(&inst) + 1e-6,
            "seed {seed}: P1 {p1} > P0 {p0} + σ {}",
            sigma(&inst)
        );
    }
}

#[test]
fn theorem1_feasibility_of_p2_solutions() {
    // What ℙ₂'s constraints (10a)+(10b) actually guarantee: demand is
    // always met, and every cloud's load exceeds its capacity by at most
    // the total over-allocation `(Σ_i x_{i,t} − Σ_j λ_j)⁺`. The paper's
    // stronger claim (exact capacity feasibility) fails when (10b) rows
    // bind — the erratum documented in DESIGN.md and pinned down by
    // `raw_p2_exceeds_capacity_on_tight_instances` below; the algorithm's
    // repair projection restores exact feasibility.
    for seed in [4, 5] {
        let inst = roomy_instance(seed, 6, 6);
        let sols = solve_p2_horizon(&inst, Epsilons::default());
        for (t, s) in sols.iter().enumerate() {
            assert!(
                s.allocation.demand_shortfall(inst.workloads()) < 1e-4,
                "seed {seed} slot {t}: demand violated"
            );
            let surplus = (s.allocation.grand_total() - inst.total_workload()).max(0.0);
            assert!(
                s.allocation.capacity_excess(inst.system().capacities()) <= surplus + 1e-4,
                "seed {seed} slot {t}: capacity excess beyond the (10b) structural bound"
            );
        }
    }
}

#[test]
fn lemma2_dual_fit_is_feasible() {
    let inst = roomy_instance(7, 5, 5);
    let eps = Epsilons::default();
    let sols = solve_p2_horizon(&inst, eps);
    let fit = dual::fit(&inst, &sols, eps);
    let simple = fit.simple_constraint_violation(&inst);
    assert!(simple < 1e-6, "bound constraints violated by {simple}");
    let coupling = fit.coupling_violation(&inst, &sols, eps);
    assert!(coupling < 1e-2, "coupling (14a) violated by {coupling}");
}

#[test]
fn weak_duality_chain_d_le_p1() {
    // D ≤ P₃ ≤ P₁: we check the outer inequality D ≤ P₁ evaluated at the
    // algorithm's own trajectory (P₃'s optimum lies between).
    let inst = roomy_instance(8, 5, 5);
    let eps = Epsilons::default();
    let sols = solve_p2_horizon(&inst, eps);
    let fit = dual::fit(&inst, &sols, eps);
    let allocations: Vec<Allocation> = sols.iter().map(|s| s.allocation.clone()).collect();
    let p1 = p1_objective(&inst, &allocations);
    let d = fit.objective(&inst);
    assert!(d <= p1 + 1e-6, "dual objective {d} exceeds primal P1 {p1}");
}

#[test]
fn full_duality_chain_d_le_p3_le_p1() {
    // The complete chain of §IV: D ≤ P₃ ≤ P₁, with ℙ₃ solved exactly as an
    // LP and the access-delay constant excluded consistently.
    use edgealloc::programs::p3;
    let inst = roomy_instance(14, 4, 4);
    let eps = Epsilons::default();
    let sols = solve_p2_horizon(&inst, eps);
    let fit = dual::fit(&inst, &sols, eps);
    let d = fit.objective(&inst);
    let p3_opt = p3::optimal_value(&inst, &optim::lp::IpmOptions::default()).unwrap();
    let access_constant: f64 = (0..inst.num_slots())
        .map(|t| {
            (0..inst.num_users())
                .map(|j| inst.weights().quality * inst.access_delay(j, t))
                .sum::<f64>()
        })
        .sum();
    let allocations: Vec<Allocation> = sols.iter().map(|s| s.allocation.clone()).collect();
    let p1 = p1_objective(&inst, &allocations) - access_constant;
    assert!(d <= p3_opt + 1e-5, "D {d} > P3 {p3_opt}");
    assert!(p3_opt <= p1 + 1e-5, "P3 {p3_opt} > P1 {p1}");
}

#[test]
fn theorem2_competitive_ratio_bound_holds() {
    // The empirical ratio must respect r = 1 + γ|I| (it is far below it).
    for seed in [9, 10] {
        let inst = random_instance(seed, 5, 5);
        let mut alg = OnlineRegularized::with_defaults();
        let bound = alg.theoretical_ratio(inst.system());
        let traj = run_online(&inst, &mut alg).unwrap();
        let offline = solve_offline(&inst).unwrap();
        let ratio = competitive_ratio(
            evaluate_trajectory(&inst, &traj.allocations).total(),
            offline.cost.total(),
        );
        assert!(ratio >= 1.0 - 1e-6, "seed {seed}: ratio {ratio} below 1");
        assert!(
            ratio <= bound,
            "seed {seed}: ratio {ratio} violates the theoretical bound {bound}"
        );
    }
}

#[test]
fn p2_partial_derivative_positive_above_previous() {
    // ∂P₂/∂x_{ijt} > 0 for x above the previous solution (Theorem 1's
    // monotonicity argument), checked by numeric differentiation.
    let inst = random_instance(11, 4, 3);
    let eps = Epsilons::default();
    let input = SlotInput::from_instance(&inst, 0);
    let prev = Allocation::zeros(inst.num_clouds(), inst.num_users());
    let solver = p2::build(&input, &prev, eps).unwrap();
    let f = solver.objective();
    // Any point with x ≥ prev = 0: use a uniform positive point.
    let n = inst.num_clouds() * inst.num_users();
    let x = vec![1.0; n];
    let g = f.gradient(&x);
    for (k, gk) in g.iter().enumerate() {
        assert!(*gk > 0.0, "∂P2/∂x[{k}] = {gk} not positive");
    }
}

#[test]
fn gamma_formula_matches_definition() {
    let inst = random_instance(12, 4, 3);
    let alg = OnlineRegularized::with_epsilon(0.5);
    let eps = 0.5;
    let expected = inst
        .system()
        .capacities()
        .iter()
        .map(|&c| (c + eps) * (1.0 + c / eps).ln())
        .fold(0.0f64, f64::max);
    assert!((alg.gamma(inst.system()) - expected).abs() < 1e-9);
}

#[test]
fn repair_restores_feasibility_on_tight_instances() {
    // At 80% utilization with few users, the raw ℙ₂ optimum can exceed
    // capacity (the Theorem-1 erratum); the full algorithm (with the repair
    // projection) must still produce a ℙ₀-feasible trajectory.
    for seed in [4, 7] {
        let inst = random_instance(seed, 6, 6);
        let traj = run_online(&inst, &mut OnlineRegularized::with_defaults()).unwrap();
        for (t, x) in traj.allocations.iter().enumerate() {
            assert!(
                x.demand_shortfall(inst.workloads()) < 1e-6,
                "seed {seed} slot {t}: demand"
            );
            assert!(
                x.capacity_excess(inst.system().capacities()) < 1e-6,
                "seed {seed} slot {t}: capacity"
            );
        }
    }
}

#[test]
fn raw_p2_exceeds_capacity_on_tight_instances() {
    // Pin down the erratum itself: without repair, the ℙ₂ optimum really
    // does exceed capacity on a tight instance (so the repair projection is
    // not dead code).
    let inst = random_instance(4, 6, 6);
    let traj = run_online(
        &inst,
        &mut OnlineRegularized::with_defaults().without_repair(),
    )
    .unwrap();
    let worst = traj
        .allocations
        .iter()
        .map(|x| x.capacity_excess(inst.system().capacities()))
        .fold(0.0f64, f64::max);
    assert!(
        worst > 1e-3,
        "expected a visible capacity excess, got {worst}"
    );
}
