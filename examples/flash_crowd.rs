//! Flash-crowd scenario: users converge on one station (a stadium event at
//! Circo Massimo), overloading its edge cloud. Capacity constraints force
//! workload to spill to neighboring clouds; the online algorithm balances
//! spillover quality cost against migration churn as the crowd arrives and
//! disperses.
//!
//! Run with: `cargo run --release --example flash_crowd`

use edgealloc::prelude::*;
use mobility::MobilityInput;
use rand::SeedableRng;

fn main() -> Result<(), edgealloc::Error> {
    let net = mobility::rome_metro();
    let venue = 13; // Circo Massimo
    let (num_users, num_slots) = (12usize, 18usize);

    // Users random-walk for 6 slots, crowd at the venue for 6, disperse.
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let walk = mobility::random_walk::generate(&net, num_users, num_slots, &mut rng);
    let mut attachment = Vec::new();
    for j in 0..num_users {
        let mut row: Vec<usize> = (0..num_slots).map(|t| walk.attached(j, t)).collect();
        for slot in row.iter_mut().take(12).skip(6) {
            *slot = venue;
        }
        attachment.push(row);
    }
    let mobility = MobilityInput::new(net.len(), attachment, vec![vec![0.1; num_slots]; num_users]);
    let instance = Instance::synthetic(&net, mobility, &mut rng);

    let mut approx = OnlineRegularized::with_defaults();
    let traj = run_online(&instance, &mut approx)?;
    let venue_cap = instance.system().capacity(venue);
    println!(
        "venue: {} (capacity {venue_cap:.1})",
        net.station(venue).name
    );
    println!("slot | attached@venue | x@venue | spillover");
    for t in 0..num_slots {
        let attached = (0..num_users)
            .filter(|&j| instance.attached(j, t) == venue)
            .count();
        let local = traj.allocations[t].cloud_total(venue);
        let demand_here: f64 = (0..num_users)
            .filter(|&j| instance.attached(j, t) == venue)
            .map(|j| instance.workload(j))
            .sum();
        println!(
            "{t:>4} | {attached:>14} | {local:>7.2} | {:>9.2}",
            (demand_here - local).max(0.0)
        );
        assert!(
            local <= venue_cap + 1e-6,
            "capacity must hold even under the flash crowd"
        );
    }
    let cost = evaluate_trajectory(&instance, &traj.allocations);
    let offline = solve_offline(&instance)?;
    println!();
    println!(
        "online total {:.2} vs offline {:.2} (ratio {:.3})",
        cost.total(),
        offline.cost.total(),
        competitive_ratio(cost.total(), offline.cost.total())
    );
    Ok(())
}
