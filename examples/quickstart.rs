//! Quickstart: allocate resources for a handful of mobile users online and
//! compare against the clairvoyant offline optimum.
//!
//! Run with: `cargo run --release --example quickstart`

use edgealloc::prelude::*;
use rand::SeedableRng;

fn main() -> Result<(), edgealloc::Error> {
    // An edge-cloud system: one cloud per central-Rome metro station.
    let net = mobility::rome_metro();

    // Users move by a random walk on the metro graph for 12 one-minute
    // slots; the synthetic instance adds workloads, capacities, and price
    // processes exactly as in the paper's evaluation setup.
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let mob = mobility::random_walk::generate(&net, 10, 12, &mut rng);
    let instance = Instance::synthetic(&net, mob, &mut rng);

    // The paper's online algorithm: solve the regularized program ℙ₂ each
    // slot, knowing nothing about future prices or movements.
    let mut online = OnlineRegularized::with_defaults();
    let trajectory = run_online(&instance, &mut online)?;
    let online_cost = evaluate_trajectory(&instance, &trajectory.allocations);

    // The offline optimum sees the whole future (impractical; baseline).
    let offline = solve_offline(&instance)?;

    println!("online total cost:  {:.2}", online_cost.total());
    println!(
        "  operation {:.2} | quality {:.2} | reconfig {:.2} | migration {:.2}",
        online_cost.operation, online_cost.quality, online_cost.reconfig, online_cost.migration
    );
    println!("offline total cost: {:.2}", offline.cost.total());
    println!(
        "empirical competitive ratio: {:.3} (theoretical bound: {:.1})",
        competitive_ratio(online_cost.total(), offline.cost.total()),
        online.theoretical_ratio(instance.system()),
    );
    Ok(())
}
