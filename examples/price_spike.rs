//! Price-spike scenario: a stationary user population faces a sudden
//! operation-price surge at the cloud hosting their workload. The greedy
//! policy reacts instantly (and pays migration both ways when the spike
//! ends); the regularized algorithm hedges, drifting workload away in
//! proportion to how long the spike persists — the Figure-1 intuition on a
//! richer instance.
//!
//! Run with: `cargo run --release --example price_spike`

use edgealloc::cost::CostWeights;
use edgealloc::prelude::*;
use edgealloc::EdgeCloudSystem;
use mobility::MobilityInput;

fn main() -> Result<(), edgealloc::Error> {
    // Three clouds in a line, 1.0 delay apart; six users parked at cloud 0.
    let (num_clouds, num_users, num_slots) = (3usize, 6usize, 16usize);
    let delay = vec![
        vec![0.0, 1.0, 2.0],
        vec![1.0, 0.0, 1.0],
        vec![2.0, 1.0, 0.0],
    ];
    let system = EdgeCloudSystem::new(vec![10.0, 10.0, 10.0], delay)?;
    let mobility = MobilityInput::new(
        num_clouds,
        vec![vec![0; num_slots]; num_users],
        vec![vec![0.3; num_slots]; num_users],
    );

    // Operation prices: cloud 0 spikes 5× during slots 4..10.
    let mut prices = vec![vec![1.0, 1.2, 1.4]; num_slots];
    for row in prices.iter_mut().take(10).skip(4) {
        row[0] = 5.0;
    }

    let instance = Instance::new(
        system,
        vec![1.0; num_users],
        mobility,
        prices,
        vec![0.5; num_clouds],  // c_i
        vec![0.25; num_clouds], // b_out
        vec![0.25; num_clouds], // b_in
        CostWeights::default(),
    )?;

    let offline = solve_offline(&instance)?;
    println!("slot | price(c0) | greedy x@c0 | approx x@c0 | offline x@c0");
    let mut greedy = OnlineGreedy::new();
    let mut approx = OnlineRegularized::with_defaults();
    let tg = run_online(&instance, &mut greedy)?;
    let ta = run_online(&instance, &mut approx)?;
    for t in 0..num_slots {
        println!(
            "{t:>4} | {:>9.1} | {:>11.2} | {:>11.2} | {:>12.2}",
            instance.operation_price(0, t),
            tg.allocations[t].cloud_total(0),
            ta.allocations[t].cloud_total(0),
            offline.allocations[t].cloud_total(0),
        );
    }
    let cg = evaluate_trajectory(&instance, &tg.allocations).total();
    let ca = evaluate_trajectory(&instance, &ta.allocations).total();
    println!();
    println!(
        "totals — greedy {:.2} ({:.3}×opt), approx {:.2} ({:.3}×opt), offline {:.2}",
        cg,
        cg / offline.cost.total(),
        ca,
        ca / offline.cost.total(),
        offline.cost.total()
    );
    Ok(())
}
