//! Fault storm: run a scenario whose instances are deliberately corrupted
//! — NaN and negative price spikes, a cloud going dark, a demand surge past
//! total capacity — and watch the pipeline degrade instead of dying. The
//! outcome's health telemetry shows which ladder rungs carried each
//! algorithm through.
//!
//! Run with: `cargo run --release --example fault_storm`

use edgealloc::algorithms::run_online;
use edgealloc::prelude::*;
use optim::convex::BarrierOptions;
use sim::faults::{FaultKind, FaultPlan};
use sim::report::ratio_table;
use sim::runner::run_scenario;
use sim::scenario::{AlgorithmKind, MobilityKind, Scenario};

fn main() -> Result<(), edgealloc::Error> {
    let scenario = Scenario {
        name: "fault-storm".into(),
        mobility: MobilityKind::RandomWalk { num_users: 8 },
        num_slots: 10,
        algorithms: vec![
            AlgorithmKind::Approx { eps: 0.5 },
            AlgorithmKind::Greedy,
            AlgorithmKind::StatOpt,
        ],
        repetitions: 3,
        seed: 4242,
        faults: FaultPlan {
            faults: vec![
                FaultKind::PriceNan { slot: 2, cloud: 0 },
                FaultKind::PriceSpike {
                    slot: 5,
                    cloud: 3,
                    value: -40.0,
                },
                FaultKind::ZeroCapacity { cloud: 1 },
                FaultKind::DemandSurge { factor: 1.1 },
            ],
        },
        ..Scenario::default()
    };

    let outcome = run_scenario(&scenario)?;
    println!("{}", ratio_table(&outcome));
    for alg in &outcome.algorithms {
        let h = alg.merged_health();
        let r = alg.fallback_totals();
        println!(
            "{:<20} degraded {:>5.1}% of {} slots | sanitized {} | rungs: primary {} / relaxed {} / lp {} / carry {}",
            alg.name,
            100.0 * alg.degraded_slot_fraction(),
            h.slots,
            h.sanitized_slots,
            r.primary,
            r.relaxed_tolerance,
            r.per_slot_lp,
            r.carry_forward,
        );
    }
    for f in &outcome.failures {
        let kind = if f.fatal { "FATAL" } else { "note " };
        println!("[{kind}] rep {}: {}", f.repetition, f.message);
    }

    // The same ladder, close up: cripple the barrier to a single outer
    // iteration and watch every slot still get decided.
    println!("\ncrippled barrier (max_outer = 1), Figure-1 instance:");
    let inst = Instance::fig1_example(2.1, true);
    let mut crippled = OnlineRegularized::with_defaults().with_solver_options(BarrierOptions {
        max_outer: 1,
        ..BarrierOptions::default()
    });
    let traj = run_online(&inst, &mut crippled)?;
    for (t, h) in traj.health.iter().enumerate() {
        println!(
            "  slot {t}: rung {:?}, {} attempt(s), residual {:.2e}",
            h.rung,
            h.attempts,
            h.final_residual.unwrap_or(f64::NAN)
        );
    }
    let cost = evaluate_trajectory(&inst, &traj.allocations);
    println!(
        "  total cost {:.2} (finite, horizon complete)",
        cost.total()
    );
    Ok(())
}
