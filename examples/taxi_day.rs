//! A rush-hour in Rome: taxis roam the city while the operator reallocates
//! edge-cloud resources online. Compares the full algorithm roster the
//! paper evaluates and prints a Figure-2-style table.
//!
//! Run with: `cargo run --release --example taxi_day`
//! (add `-- --users 60 --slots 60` style flags via env vars below)

use sim::report::ratio_table;
use sim::scenario::{AlgorithmKind, MobilityKind, Scenario};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> Result<(), edgealloc::Error> {
    let scenario = Scenario {
        name: "taxi-rush-hour".into(),
        mobility: MobilityKind::Taxi {
            num_users: env_usize("USERS", 20),
        },
        num_slots: env_usize("SLOTS", 15),
        algorithms: vec![
            AlgorithmKind::PerfOpt,
            AlgorithmKind::OperOpt,
            AlgorithmKind::StatOpt,
            AlgorithmKind::Greedy,
            AlgorithmKind::Approx { eps: 0.5 },
        ],
        repetitions: env_usize("REPS", 2),
        seed: 7,
        ..Scenario::default()
    };
    println!(
        "Simulating {} taxis over {} one-minute slots across 15 Rome metro edge clouds...",
        scenario.mobility.num_users(),
        scenario.num_slots
    );
    let outcome = sim::run_scenario(&scenario)?;
    println!();
    println!("{}", ratio_table(&outcome));
    println!("(ratios are total cost normalized by the offline optimum; lower is better)");
    Ok(())
}
